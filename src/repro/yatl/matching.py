"""Body pattern matching (Section 3.1, phase 1).

Matching filters the input data: each body pattern is matched against
ground trees, producing the set of variable bindings the rest of the
rule machinery works on. The semantics follow Figure 3:

* plain edges consume exactly one child;
* ``*`` edges consume a run of children, **each** of which must match
  the edge's target and yields its own binding (one binding per
  supplier in Figure 3) — an empty run passes the current binding
  through unchanged, giving active-domain semantics for collections;
* index edges ``(I)`` behave like ``*`` and additionally bind the
  1-based position of each matched child (Rule 5);
* several body patterns join through shared variables (Rule 3), and a
  body pattern whose name is bound by a ``&``-leaf of another pattern
  matches the *referenced* tree (rule Web6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.instantiation import InstantiationContext, is_instance
from ..core.patterns import (
    GROUP,
    INDEX,
    ONE,
    ORDER,
    STAR,
    NameTerm,
    PChild,
    PNameLeaf,
    PRefLeaf,
    PVarLeaf,
)
from ..core.trees import DataStore, Ref, Tree
from ..core.variables import Var
from ..errors import EvaluationError
from .ast import BodyPattern, Rule
from .bindings import Binding, dedup_bindings


class MatchContext:
    """What the matcher needs besides the pattern: the store (to follow
    references) and optionally a model (to check typed pattern
    variables and pattern-name leaves)."""

    def __init__(self, store: Optional[DataStore] = None, model=None) -> None:
        self.store = store
        self.model = model
        self._icontext: Optional[InstantiationContext] = None
        # Memoized structural coverage: (pattern id, data node) -> bool.
        # Used when a collection child conflicts with bound join
        # variables and only shape matters (see match_edges).
        self._coverage: Dict[Tuple[int, Union[Tree, Ref]], bool] = {}
        # Memo-effectiveness accounting. A plain int: the probe runs
        # per (pattern, subject) pair, so the interpreter flushes it
        # into the run's MetricsRegistry once, at the end.
        #
        # There used to be a second memo here, over *root* match
        # failures. With the dispatch index on, candidates are
        # label-filtered before they reach the matcher, so the memo
        # never fired (BENCH_PR7: root_memo_hits stayed 0 with a 1.0
        # dispatch hit ratio) while every root rejection still paid a
        # set insert keyed by a full subject hash. It was removed
        # rather than made index-aware; tests/yatl/test_dispatch.py
        # pins the removal.
        self.coverage_memo_hits = 0

    def instance_check(self, node: Union[Tree, Ref], pattern_name: str) -> bool:
        """Check *node* against a named model pattern; unresolvable
        names behave like wildcards (typing is optional, Section 3.5)."""
        if self.model is None:
            return True
        pattern = self.model.get_pattern(pattern_name)
        if pattern is None:
            return True
        if self._icontext is None:
            self._icontext = InstantiationContext(
                source_model=self.model, store=self.store
            )
        return is_instance(node, pattern, self._icontext)

    def resolve(self, ref: Ref) -> Optional[Tree]:
        if self.store is None:
            return None
        return self.store.get_optional(ref.target)


# ---------------------------------------------------------------------------
# Tree-level matching
# ---------------------------------------------------------------------------


def match_child(
    pattern: PChild,
    node: Union[Tree, Ref],
    binding: Binding,
    ctx: MatchContext,
) -> List[Binding]:
    """All extensions of *binding* under which *node* matches *pattern*."""

    # Pattern variable leaf: bind the whole subtree.
    if isinstance(pattern, PVarLeaf):
        domain = pattern.var.domain_pattern
        if domain is not None and not ctx.instance_check(node, domain):
            return []
        extended = binding.bind(pattern.var, node)
        return [extended] if extended is not None else []

    # Pattern-name leaf (dereferencing): a structural type check.
    if isinstance(pattern, PNameLeaf):
        if pattern.term.args:
            raise EvaluationError(
                f"Skolem term {pattern.term} cannot be matched in a body"
            )
        if ctx.instance_check(node, pattern.term.functor):
            return [binding]
        return []

    # Reference leaf: the data must be a reference.
    if isinstance(pattern, PRefLeaf):
        if not isinstance(node, Ref):
            return []
        target = pattern.target
        if isinstance(target, NameTerm):
            if target.args:
                raise EvaluationError(
                    f"Skolem reference &{target} cannot be matched in a body"
                )
            referenced = ctx.resolve(node)
            if referenced is None:
                return [binding]  # cannot check a dangling reference
            if ctx.instance_check(referenced, target.functor):
                return [binding]
            return []
        # pattern-variable target: bind the *referenced* tree
        referenced = ctx.resolve(node)
        if referenced is None:
            return []
        if target.domain_pattern is not None and not ctx.instance_check(
            referenced, target.domain_pattern
        ):
            return []
        extended = binding.bind(target, referenced)
        return [extended] if extended is not None else []

    # Ordinary node.
    if isinstance(node, Ref):
        return []
    label = pattern.label
    if isinstance(label, Var):
        if not label.domain.contains(node.label):
            return []
        extended = binding.bind(label, node.label)
        if extended is None:
            return []
        binding = extended
    elif label != node.label:
        return []
    if not pattern.edges and node.children:
        return []  # a pattern leaf only matches a data leaf
    return match_edges(pattern.edges, node.children, binding, ctx)


def _covers(target, child, ctx: MatchContext) -> bool:
    """Memoized structural coverage: does *child* match the shape of
    *target* under a fresh binding?"""
    key = (id(target), child)
    cached = ctx._coverage.get(key)
    if cached is None:
        cached = bool(match_child(target, child, Binding.EMPTY, ctx))
        ctx._coverage[key] = cached
    else:
        ctx.coverage_memo_hits += 1
    return cached


def match_edges(
    edges: Sequence,
    children: Sequence[Union[Tree, Ref]],
    binding: Binding,
    ctx: MatchContext,
) -> List[Binding]:
    """Align pattern edges with the ordered children of a data node.

    Every child must be consumed by some edge (full structural
    coverage, as in the instantiation semantics of Section 2). A
    star-like edge consumes a run of children; each child contributes
    its own bindings ("one binding per supplier"), and a child that
    matches the target's *shape* but conflicts with already-bound join
    variables (Rule 3's shared ``SN``) is covered without contributing.
    """
    results: List[Binding] = []
    n_edges, n_children = len(edges), len(children)

    def rec(ei: int, ci: int, env: Binding) -> None:
        if ei == n_edges:
            if ci == n_children:
                results.append(env)
            return
        edge = edges[ei]
        if edge.kind == ONE:
            if ci < n_children:
                for extended in match_child(edge.target, children[ci], env, ctx):
                    rec(ei + 1, ci + 1, extended)
            return
        # Star-like edges (STAR, INDEX, and GROUP/ORDER appearing in a
        # body behave as "zero or more"): try every run length,
        # matching each consumed child exactly once.
        remaining_one = sum(1 for e in edges[ei + 1 :] if e.kind == ONE)
        max_run = n_children - ci - remaining_one
        collected: List[Binding] = []
        rec(ei + 1, ci, env)  # run of length 0
        for offset in range(max_run):
            child = children[ci + offset]
            child_env = env
            if edge.kind == INDEX:
                bound = env.bind(edge.index_var, ci + offset + 1)
                if bound is None:
                    # an index conflict skips the child (diagonal
                    # selection); coverage still requires its shape
                    if not _covers(edge.target, child, ctx):
                        break
                    matches: List[Binding] = []
                else:
                    matches = match_child(edge.target, child, bound, ctx)
            else:
                matches = match_child(edge.target, child, child_env, ctx)
            if not matches:
                if not _covers(edge.target, child, ctx):
                    break  # structural mismatch: longer runs fail too
            collected.extend(matches)
            # a run whose children all conflicted with the join is
            # covered but contributes no bindings (collected empty)
            for extended in collected:
                rec(ei + 1, ci + offset + 1, extended)

    rec(0, 0, binding)
    return dedup_bindings(results)


# ---------------------------------------------------------------------------
# Rule-level matching
# ---------------------------------------------------------------------------


def match_body(
    rule: Rule,
    input_trees: Sequence[Union[Tree, Ref]],
    ctx: MatchContext,
) -> List[Binding]:
    """Phase 1: match every body pattern, joining on shared variables.

    *Root* body patterns (those whose name is not bound by a leaf of
    another pattern) range over the input trees; dependent patterns
    match the tree their name variable is already bound to."""
    root_names = {bp.name.name for bp in rule.root_body_patterns()}
    envs: List[Binding] = [Binding.EMPTY]
    pending: List[BodyPattern] = list(rule.body)
    progress = True
    while pending and progress:
        progress = False
        still_pending: List[BodyPattern] = []
        for bp in pending:
            is_root = bp.name.name in root_names
            if not is_root and not any(bp.name in env for env in envs):
                still_pending.append(bp)
                continue
            envs = _apply_body_pattern(bp, is_root, envs, input_trees, ctx)
            progress = True
        pending = still_pending
        if not envs:
            return []
    if pending:
        names = ", ".join(bp.name.name for bp in pending)
        raise EvaluationError(
            f"rule {rule.name!r}: body pattern(s) {names} depend on names "
            f"never bound by any other pattern"
        )
    return dedup_bindings(envs)


def _apply_body_pattern(
    bp: BodyPattern,
    is_root: bool,
    envs: List[Binding],
    input_trees: Sequence[Union[Tree, Ref]],
    ctx: MatchContext,
) -> List[Binding]:
    extended: List[Binding] = []
    for env in envs:
        bound = env.get(bp.name)
        if bound is not None:
            candidates = [bound]
        elif is_root:
            candidates = list(input_trees)
        else:
            continue  # dependent pattern with an unbound name: no match
        for candidate in candidates:
            if not isinstance(candidate, (Tree, Ref)):
                continue
            named = env.bind(bp.name, candidate)
            if named is None:
                continue
            matches = match_child(bp.tree, candidate, named, ctx)
            if not matches and isinstance(candidate, Ref):
                # A pattern over the *referenced* tree: follow the
                # reference when the direct (reference-leaf) match fails.
                resolved = ctx.resolve(candidate)
                if resolved is not None:
                    renamed = env.bind(bp.name, resolved)
                    if renamed is not None:
                        matches = match_child(bp.tree, resolved, renamed, ctx)
            extended.extend(matches)
    return extended
