"""A fluent builder API for YATL rules and programs.

The paper's graphical editor assembles rules piece by piece and
"generates" YATL; this builder is its programmatic equivalent —
patterns are given in textual syntax, conditions through chained
calls, and :meth:`RuleBuilder.build` lints the result::

    rule1 = (rule_("Rule1")
             .head("Psup", "SN")
             .out("class -> supplier < -> name -> SN, -> city -> C, -> zip -> Z >")
             .match("Pbr", BROCHURE_PATTERN)
             .where("Year", ">", 1975)
             .let("C", "city", "Add")
             .let("Z", "zip", "Add")
             .build())
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..core.labels import Label, is_label
from ..core.patterns import NameTerm, PChild
from ..core.syntax import parse_pattern_tree
from ..core.variables import PatternVar, Var
from ..errors import ModelError, YatError
from .ast import BodyPattern, Expr, FunctionCall, HeadPattern, Predicate, Rule
from .functions import FunctionRegistry, standard_registry
from .lint import errors_of, lint_rule
from .program import Program


def _coerce_expr(value: object) -> Expr:
    if isinstance(value, (Var, PatternVar)):
        return value
    if isinstance(value, str) and value and value[0].isupper():
        return Var(value)
    if is_label(value):
        return value  # type: ignore[return-value]
    raise ModelError(f"cannot use {value!r} in a condition")


def _coerce_tree(tree: Union[str, PChild], known: Sequence[str]) -> PChild:
    if isinstance(tree, str):
        return parse_pattern_tree(tree, known_names=known)
    return tree


class RuleBuilder:
    """Accumulates the pieces of one rule; ``build()`` lints and
    returns it."""

    def __init__(self, name: str, known_names: Sequence[str] = ()) -> None:
        self.name = name
        self.known_names = list(known_names)
        self._head: Optional[HeadPattern] = None
        self._head_term: Optional[NameTerm] = None
        self._head_tree: Optional[PChild] = None
        self._body: List[BodyPattern] = []
        self._predicates: List[Predicate] = []
        self._calls: List[FunctionCall] = []
        self._fallback = False

    # -- head -----------------------------------------------------------------

    def head(self, functor: str, *args: Union[str, Var, PatternVar, Label]) -> "RuleBuilder":
        """Name the head Skolem term, e.g. ``.head("Psup", "SN")``."""
        coerced = []
        for arg in args:
            if isinstance(arg, str) and arg and arg[0].isupper():
                coerced.append(Var(arg))
            else:
                coerced.append(arg)
        self._head_term = NameTerm(functor, coerced)
        return self

    def out(self, tree: Union[str, PChild]) -> "RuleBuilder":
        """The head pattern tree (textual syntax or a built pattern)."""
        self._head_tree = _coerce_tree(tree, self.known_names)
        return self

    def fallback(self) -> "RuleBuilder":
        """Make this an empty-head rule (the Rule Exception shape)."""
        self._fallback = True
        return self

    # -- body -----------------------------------------------------------------

    def match(self, name: str, tree: Union[str, PChild]) -> "RuleBuilder":
        """Add a named body pattern."""
        self._body.append(BodyPattern(name, _coerce_tree(tree, self.known_names)))
        return self

    def where(self, left: object, op: str, right: object) -> "RuleBuilder":
        """Add a predicate, e.g. ``.where("Year", ">", 1975)``."""
        self._predicates.append(
            Predicate(_coerce_expr(left), op, _coerce_expr(right))
        )
        return self

    def let(self, result: Optional[str], function: str, *args: object) -> "RuleBuilder":
        """Add a function call ``result is function(args)``; pass
        ``None`` as result for a boolean predicate call."""
        self._calls.append(
            FunctionCall(
                Var(result) if result else None,
                function,
                [_coerce_expr(a) for a in args],
            )
        )
        return self

    def call(self, function: str, *args: object) -> "RuleBuilder":
        """A boolean external predicate call (no result variable)."""
        return self.let(None, function, *args)

    # -- finish ------------------------------------------------------------------

    def build(
        self,
        registry: Optional[FunctionRegistry] = None,
        lint: bool = True,
    ) -> Rule:
        if self._fallback:
            head = None
        else:
            if self._head_term is None or self._head_tree is None:
                raise YatError(
                    f"rule {self.name!r}: both .head() and .out() are "
                    f"required (or .fallback())"
                )
            head = HeadPattern(self._head_term, self._head_tree)
        rule = Rule(self.name, head, self._body, self._predicates, self._calls)
        if lint:
            diagnostics = errors_of(
                lint_rule(rule, registry or standard_registry())
            )
            if diagnostics:
                details = "; ".join(d.message for d in diagnostics)
                raise YatError(f"rule {self.name!r} fails lint: {details}")
        return rule


class ProgramBuilder:
    """Accumulates rules into a program."""

    def __init__(self, name: str, registry: Optional[FunctionRegistry] = None):
        self.name = name
        self.registry = registry or standard_registry()
        self._rules: List[Rule] = []
        self._known: List[str] = []
        self._orders: List[tuple] = []

    def knows(self, *pattern_names: str) -> "ProgramBuilder":
        """Declare pattern names so bare leaves resolve to them."""
        self._known.extend(pattern_names)
        return self

    def rule(self, name: str) -> RuleBuilder:
        builder = RuleBuilder(name, known_names=self._known)
        builder._program = self  # type: ignore[attr-defined]
        return builder

    def add(self, rule_or_builder: Union[Rule, RuleBuilder]) -> "ProgramBuilder":
        if isinstance(rule_or_builder, RuleBuilder):
            rule_or_builder = rule_or_builder.build(self.registry)
        self._rules.append(rule_or_builder)
        return self

    def order(self, specific: str, general: str) -> "ProgramBuilder":
        self._orders.append((specific, general))
        return self

    def build(self) -> Program:
        program = Program(self.name, self._rules, registry=self.registry)
        for specific, general in self._orders:
            program.enforce_order(specific, general)
        return program


def rule_(name: str, known_names: Sequence[str] = ()) -> RuleBuilder:
    """Start building a rule."""
    return RuleBuilder(name, known_names)


def program_(name: str, registry: Optional[FunctionRegistry] = None) -> ProgramBuilder:
    """Start building a program."""
    return ProgramBuilder(name, registry)
