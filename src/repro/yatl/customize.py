"""Program instantiation / customization (Section 4.1).

"With YAT, the user instantiates the general program by giving a more
specific pattern. This instantiation process is done automatically, and
the resulting new program is equivalent to the previous one, but more
specific."

The instantiation is a symbolic partial evaluation of the program over
the given pattern:

* rule bodies are matched *symbolically* against the pattern — rule
  variables bind to the pattern's constants, variables and subtrees;
* dereferenced Skolems are expanded recursively: the head trees of the
  sub-rules are spliced in, "appended together to form the head part of
  the rule";
* ``&`` references are *not* expanded: the sub-rule's body pattern for
  the referenced object "has been added to the rule body along with all
  encountered function calls" (the incomplete ``Psup`` pattern of rule
  WebCar);
* variables of merged rules are renamed apart (``T`` → ``T1``), and
  external calls whose arguments fold to constants are evaluated at
  instantiation time;
* a ``*`` edge of the pattern keeps iteration in the derived rule,
  while concrete children unroll into plain edges (the three ``li``
  items of rule WebCar).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.instantiation import InstantiationContext, is_instance
from ..core.labels import Label, is_label
from ..core.models import Model
from ..core.patterns import (
    GROUP,
    INDEX,
    ONE,
    ORDER,
    STAR,
    NameTerm,
    PChild,
    PEdge,
    PNameLeaf,
    PNode,
    Pattern,
    PRefLeaf,
    PVarLeaf,
    collect_variables,
)
from ..core.variables import PatternVar, Var
from ..errors import CustomizationError, FunctionError
from .ast import BodyPattern, Expr, FunctionCall, HeadPattern, Predicate, Rule
from .functions import FunctionRegistry, evaluate_comparison
from .program import Program

_MAX_DEPTH = 500


class SymRef:
    """Symbolic value of a pattern variable bound through a ``&`` leaf:
    the name of the referenced pattern, plus the Skolem arguments when
    the reference carried some (``&Psup(SN)`` in an output model)."""

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: Tuple = ()) -> None:
        self.functor = functor
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"SymRef({self.functor!r}, {self.args!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SymRef)
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash((SymRef, self.functor, self.args))


#: Symbolic values: constants, instance-side variables, instance-side
#: subtrees, or references to named patterns.
SymValue = Union[Label, Var, PChild, SymRef]


class SymEnv:
    """A symbolic binding environment; ``star`` marks environments that
    iterate (they were produced under a ``*`` edge of the pattern)."""

    __slots__ = ("data", "star")

    def __init__(self, data: Optional[Dict[str, SymValue]] = None, star: bool = False):
        self.data = dict(data) if data else {}
        self.star = star

    def bind(self, name: str, value: SymValue) -> Optional["SymEnv"]:
        existing = self.data.get(name)
        if name in self.data:
            return self if existing == value else None
        extended = dict(self.data)
        extended[name] = value
        return SymEnv(extended, self.star)

    def starred(self) -> "SymEnv":
        return SymEnv(self.data, True)

    def get(self, name: str) -> Optional[SymValue]:
        return self.data.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.data

    def __repr__(self) -> str:
        return f"SymEnv({self.data!r}, star={self.star})"


class Derivation:
    """The result of specializing rules on one pattern fragment."""

    def __init__(
        self,
        head: PChild,
        body: Optional[List[BodyPattern]] = None,
        predicates: Optional[List[Predicate]] = None,
        calls: Optional[List[FunctionCall]] = None,
    ) -> None:
        self.head = head
        self.body = body or []
        self.predicates = predicates or []
        self.calls = calls or []

    def absorb(self, other: "Derivation") -> None:
        self.body.extend(other.body)
        self.predicates.extend(other.predicates)
        self.calls.extend(other.calls)


# ---------------------------------------------------------------------------
# Fresh-variable management
# ---------------------------------------------------------------------------


class Renamer:
    """Allocates fresh variable names, avoiding a reserved set."""

    def __init__(self, reserved: Set[str]) -> None:
        self.used = set(reserved)

    def fresh(self, base: str) -> str:
        if base not in self.used:
            self.used.add(base)
            return base
        counter = 1
        while f"{base}{counter}" in self.used:
            counter += 1
        name = f"{base}{counter}"
        self.used.add(name)
        return name


# ---------------------------------------------------------------------------
# Symbolic matching
# ---------------------------------------------------------------------------


class _Specializer:
    def __init__(
        self,
        program: Program,
        context_model: Optional[Model],
        renamer: Renamer,
    ) -> None:
        self.program = program
        self.hierarchy = program.hierarchy()
        self.order = [r for r in self.hierarchy.specific_first() if not r.is_fallback]
        self.context_model = context_model
        self.renamer = renamer
        self.registry: FunctionRegistry = program.registry
        # Lenient: customization patterns routinely leave variables with
        # the default domain ("the system does not assume any knowledge
        # of the Psup pattern", footnote 3); run-time matching re-checks
        # the actual data anyway.
        self._icontext = InstantiationContext(
            source_model=program.input_model or context_model,
            instance_model=context_model,
            lenient=True,
        )

    # -- instance checks ------------------------------------------------------

    def _check_domain(self, instance: PChild, pattern_name: str) -> bool:
        for model in (self.program.input_model, self.context_model):
            if model is None:
                continue
            pattern = model.get_pattern(pattern_name)
            if pattern is not None:
                return is_instance(instance, pattern, self._icontext)
        return True

    # -- symbolic matching ------------------------------------------------------

    def sym_match(
        self, rule_side: PChild, instance: PChild, env: SymEnv
    ) -> List[SymEnv]:
        if isinstance(rule_side, PVarLeaf):
            domain = rule_side.var.domain_pattern
            if domain is not None and not self._check_domain(instance, domain):
                return []
            bound = env.bind(rule_side.var.name, instance)
            return [bound] if bound is not None else []

        if isinstance(rule_side, PNameLeaf):
            if rule_side.term.args:
                return []
            if self._check_domain(instance, rule_side.term.functor):
                return [env]
            return []

        if isinstance(rule_side, PRefLeaf):
            if not isinstance(instance, PRefLeaf):
                return []
            target = rule_side.target
            inst_target = instance.target
            if isinstance(target, PatternVar):
                if isinstance(inst_target, NameTerm):
                    value = SymRef(inst_target.functor, inst_target.args)
                else:
                    value = SymRef(inst_target.name)
                bound = env.bind(target.name, value)
                return [bound] if bound is not None else []
            # rule-side named reference: structural acceptance
            return [env]

        # rule side is a PNode
        if not isinstance(instance, PNode):
            return []  # the instance is more general here: no specialization
        label = rule_side.label
        if isinstance(label, Var):
            inst_label = instance.label
            if isinstance(inst_label, Var):
                if not inst_label.domain.subset_of(label.domain):
                    return []
                bound = env.bind(label.name, Var(inst_label.name, inst_label.domain))
            else:
                if not label.domain.contains(inst_label):
                    return []
                bound = env.bind(label.name, inst_label)
            if bound is None:
                return []
            env = bound
        else:
            if isinstance(instance.label, Var) or instance.label != label:
                return []
        if not rule_side.edges and instance.edges:
            return []
        return self._sym_match_edges(rule_side.edges, instance.edges, env)

    def _sym_match_edges(
        self, rule_edges: Sequence[PEdge], inst_edges: Sequence[PEdge], env: SymEnv
    ) -> List[SymEnv]:
        results: List[SymEnv] = []
        n_rule, n_inst = len(rule_edges), len(inst_edges)

        def rec(ri: int, ii: int, current: SymEnv) -> None:
            if ri == n_rule:
                if ii == n_inst:
                    results.append(current)
                return
            edge = rule_edges[ri]
            if edge.kind == ONE:
                if ii < n_inst and inst_edges[ii].kind == ONE:
                    for extended in self.sym_match(
                        edge.target, inst_edges[ii].target, current
                    ):
                        rec(ri + 1, ii + 1, extended)
                return
            # star-like rule edge
            remaining_one = sum(1 for e in rule_edges[ri + 1 :] if e.kind == ONE)
            max_run = n_inst - ii - remaining_one
            for run in range(0, max_run + 1):
                envs = self._sym_match_run(edge, inst_edges, ii, run, current)
                if envs is None:
                    break
                for extended in envs:
                    rec(ri + 1, ii + run, extended)

        rec(0, 0, env)
        return results

    def _sym_match_run(
        self,
        edge: PEdge,
        inst_edges: Sequence[PEdge],
        start: int,
        run: int,
        env: SymEnv,
    ) -> Optional[List[SymEnv]]:
        if run == 0:
            return [env]
        collected: List[SymEnv] = []
        for offset in range(run):
            inst_edge = inst_edges[start + offset]
            child_env = env
            if edge.kind == INDEX and edge.index_var is not None:
                fresh = self.renamer.fresh(edge.index_var.name)
                bound = child_env.bind(edge.index_var.name, Var(fresh))
                if bound is None:
                    return None
                child_env = bound
            matches = self.sym_match(edge.target, inst_edge.target, child_env)
            if not matches:
                return None
            if inst_edge.kind != ONE:
                matches = [m.starred() for m in matches]
            collected.extend(matches)
        return collected

    # -- rule selection -----------------------------------------------------------

    def applicable(
        self, subject: PChild, functor: Optional[str] = None
    ) -> List[Tuple[Rule, List[SymEnv]]]:
        """Rules applicable to the subject pattern, with their symbolic
        environments, honouring hierarchy shadowing. ``functor``
        restricts candidates to the rules defining one Skolem functor
        (used when specializing a dereference)."""
        found: List[Tuple[Rule, List[SymEnv]]] = []
        matched_names: Set[str] = set()
        for rule in self.order:
            if functor is not None and rule.head_functor != functor:
                continue
            roots = rule.root_body_patterns()
            if len(roots) != 1:
                continue  # multi-root rules cannot be specialized on one pattern
            if self.hierarchy.shadowed(rule, matched_names):
                continue
            initial = SymEnv().bind(roots[0].name.name, subject)
            if initial is None:
                continue
            envs = self.sym_match(roots[0].tree, subject, initial)
            if not envs:
                continue
            envs = self._process_dependents(rule, roots[0], envs)
            envs, predicates_alive = self._check_predicates(rule, envs)
            if not envs or not predicates_alive:
                continue
            matched_names.add(rule.name)
            found.append((rule, envs))
        return found

    def _process_dependents(
        self, rule: Rule, root: BodyPattern, envs: List[SymEnv]
    ) -> List[SymEnv]:
        """Match dependent body patterns symbolically where their name is
        bound to a subtree; leave SymRef-bound names for carrying."""
        for bp in rule.body:
            if bp is root:
                continue
            updated: List[SymEnv] = []
            for env in envs:
                value = env.get(bp.name.name)
                if isinstance(value, (PNode, PVarLeaf, PNameLeaf, PRefLeaf)):
                    updated.extend(self.sym_match(bp.tree, value, env))
                elif isinstance(value, SymRef) and self.context_model is not None:
                    known = self.context_model.get_pattern(value.functor)
                    if known is not None and value.args:
                        # resolve against the known pattern ("additional
                        # informations about pattern Psup", Section 4.3)
                        resolved = []
                        for alt in known.alternatives:
                            resolved.extend(self.sym_match(bp.tree, alt, env))
                        if resolved:
                            updated.extend(resolved)
                        else:
                            updated.append(env)
                    else:
                        updated.append(env)
                else:
                    updated.append(env)
            envs = updated
            if not envs:
                break
        return envs

    def _check_predicates(
        self, rule: Rule, envs: List[SymEnv]
    ) -> Tuple[List[SymEnv], bool]:
        """Fold predicates whose operands specialize to constants; an
        all-constant predicate that is false kills the environment."""
        surviving = []
        for env in envs:
            alive = True
            for predicate in rule.predicates:
                left = _sym_expr(predicate.left, env)
                right = _sym_expr(predicate.right, env)
                if is_label(left) and is_label(right):
                    if not evaluate_comparison(left, predicate.op, right):
                        alive = False
                        break
            if alive:
                surviving.append(env)
        return surviving, bool(surviving)

    # -- head specialization ---------------------------------------------------------

    def derive(
        self, subject: PChild, depth: int = 0, functor: Optional[str] = None
    ) -> Derivation:
        """Derive the head fragment (plus carried body/conditions) that
        the program produces for *subject*, using the most specific
        applicable rule (of the given functor, when specializing a
        dereference)."""
        if depth > _MAX_DEPTH:
            raise CustomizationError(
                "instantiation recursion exceeded the depth limit; "
                "the program is likely cyclic on this pattern"
            )
        candidates = self.applicable(subject, functor)
        if not candidates:
            target = f"Skolem {functor}" if functor else "any rule"
            raise CustomizationError(
                f"no rule of program {self.program.name!r} ({target}) applies "
                f"to pattern fragment: {subject}"
            )
        rule, envs = candidates[0]
        return self._derive_with(rule, envs, depth)

    def _derive_with(self, rule: Rule, envs: List[SymEnv], depth: int) -> Derivation:
        assert rule.head is not None
        derivation = Derivation(head=PNode("placeholder"))
        states = [_EnvState(env, {}) for env in envs]
        self._prepare_conditions(rule, states, derivation)
        derivation.head = self._build(rule.head.tree, states, derivation, depth)
        self._carry_dependents(rule, states, derivation)
        return derivation

    def _prepare_conditions(
        self, rule: Rule, states: List["_EnvState"], derivation: Derivation
    ) -> None:
        """Fold or carry the rule's calls and predicates, per environment."""
        for state in states:
            for call in rule.calls:
                args = [self._substitute_expr(a, state) for a in call.args]
                if all(is_label(a) for a in args) and self.registry.has(call.function):
                    fn = self.registry.get(call.function)
                    if fn.accepts(args):
                        try:
                            value = fn(*args)
                        except FunctionError:
                            continue  # filtered at run time; drop the call
                        if call.result is not None and is_label(value):
                            state.substitution[call.result.name] = value
                            continue
                        if call.result is None:
                            continue  # a folded boolean predicate held
                carried_args = [
                    self._substitute_expr(a, state, rename_unbound=True)
                    for a in call.args
                ]
                result = None
                if call.result is not None:
                    result = Var(self._rename(call.result.name, state))
                state.calls.append(FunctionCall(result, call.function, carried_args))
            for predicate in rule.predicates:
                left = self._substitute_expr(predicate.left, state)
                right = self._substitute_expr(predicate.right, state)
                if is_label(left) and is_label(right):
                    continue  # already checked in _check_predicates
                left = self._substitute_expr(predicate.left, state, rename_unbound=True)
                right = self._substitute_expr(
                    predicate.right, state, rename_unbound=True
                )
                state.predicates.append(Predicate(left, predicate.op, right))

    def _carry_dependents(
        self, rule: Rule, states: List["_EnvState"], derivation: Derivation
    ) -> None:
        """Dependent body patterns bound to an *unknown* referenced
        pattern are carried into the derived body (the incomplete Psup
        pattern of rule WebCar)."""
        roots = {bp.name.name for bp in rule.root_body_patterns()}
        carried: Set[Tuple[str, int]] = set()
        for state in states:
            for bp in rule.body:
                if bp.name.name in roots:
                    continue
                value = state.env.get(bp.name.name)
                if not isinstance(value, SymRef):
                    continue
                if value.args and self.context_model is not None:
                    known = self.context_model.get_pattern(value.functor)
                    if known is not None:
                        continue  # resolved against the known pattern
                key = (value.functor, id(bp))
                if key in carried:
                    continue
                carried.add(key)
                state.substitution[bp.name.name] = Var(value.functor)
                renamed = self._rename_tree(bp.tree, state)
                derivation.body.append(BodyPattern(value.functor, renamed))
            derivation.predicates.extend(state.predicates)
            derivation.calls.extend(state.calls)
            state.predicates = []
            state.calls = []

    # -- head tree construction ----------------------------------------------------

    def _build(
        self,
        node: PChild,
        states: List["_EnvState"],
        derivation: Derivation,
        depth: int,
    ) -> PChild:
        if isinstance(node, PVarLeaf):
            value = self._agreed(node.var.name, states)
            return _as_pattern_child(value)

        if isinstance(node, PNameLeaf):
            return self._build_skolem(node.term, states, derivation, depth, deref=True)

        if isinstance(node, PRefLeaf):
            target = node.target
            if isinstance(target, PatternVar):
                raise CustomizationError(
                    f"reference to pattern variable {target.name} in a head"
                )
            return self._build_skolem(target, states, derivation, depth, deref=False)

        # PNode
        label = node.label
        if isinstance(label, Var):
            value = self._agreed(label.name, states)
            if isinstance(value, Var):
                label = value
            elif is_label(value):
                label = value
            else:
                raise CustomizationError(
                    f"variable {node.label.name} is bound to a subtree but "
                    f"used as a node label"
                )
        edges: List[PEdge] = []
        for edge in node.edges:
            edges.extend(self._build_edge(edge, states, derivation, depth))
        return PNode(label, edges)

    def _build_edge(
        self,
        edge: PEdge,
        states: List["_EnvState"],
        derivation: Derivation,
        depth: int,
    ) -> List[PEdge]:
        if edge.kind == ONE:
            return [PEdge(ONE, self._build(edge.target, states, derivation, depth))]
        built: List[PEdge] = []
        for state in states:
            target = self._build(edge.target, [state], derivation, depth)
            if state.env.star:
                if edge.kind == ORDER:
                    criteria = self._map_criteria(edge.criteria, state)
                    kind = ORDER if criteria else STAR
                    built.append(PEdge(kind, target, criteria=criteria))
                elif edge.kind == INDEX:
                    built.append(PEdge(STAR, target))
                else:
                    built.append(PEdge(edge.kind, target))
            else:
                built.append(PEdge(ONE, target))
        return built

    def _map_criteria(
        self, criteria: Sequence[Var], state: "_EnvState"
    ) -> List[Var]:
        mapped: List[Var] = []
        for criterion in criteria:
            value = self._substitute_expr(criterion, state, rename_unbound=True)
            if isinstance(value, Var):
                mapped.append(value)
        return mapped

    def _build_skolem(
        self,
        term: NameTerm,
        states: List["_EnvState"],
        derivation: Derivation,
        depth: int,
        deref: bool,
    ) -> PChild:
        args = [self._agreed_arg(a, states) for a in term.args]
        if deref and len(args) == 1:
            subject = args[0]
            if isinstance(subject, (PNode, PRefLeaf)):
                sub = self.derive(subject, depth + 1, functor=term.functor)
                derivation.absorb(sub)
                return sub.head
            if isinstance(subject, PVarLeaf):
                return PNameLeaf(
                    NameTerm(term.functor, [Var(subject.var.name)])
                )
        folded = []
        for arg in args:
            if isinstance(arg, PRefLeaf) and isinstance(arg.target, NameTerm):
                arg = SymRef(arg.target.functor, arg.target.args)
            if isinstance(arg, SymRef):
                if arg.args:
                    folded.extend(arg.args)
                else:
                    folded.append(Var(arg.functor))
            elif isinstance(arg, PVarLeaf):
                folded.append(Var(arg.var.name))
            elif isinstance(arg, PNode) and not arg.edges and isinstance(
                arg.label, Var
            ):
                folded.append(arg.label)
            elif isinstance(arg, (PNode, PNameLeaf, PRefLeaf)):
                raise CustomizationError(
                    f"cannot specialize Skolem {term} on fragment {arg}"
                )
            else:
                folded.append(arg)
        new_term = NameTerm(term.functor, folded)
        return PNameLeaf(new_term) if deref else PRefLeaf(new_term)

    # -- substitutions ------------------------------------------------------------

    def _substitute_expr(
        self, expr: Expr, state: "_EnvState", rename_unbound: bool = False
    ) -> Expr:
        if not isinstance(expr, (Var, PatternVar)):
            return expr
        folded = state.substitution.get(expr.name)
        if folded is not None:
            return folded
        value = state.env.get(expr.name)
        if value is None:
            if rename_unbound:
                return Var(self._rename(expr.name, state))
            return expr
        if is_label(value):
            return value
        if isinstance(value, Var):
            return value
        if isinstance(value, PVarLeaf):
            return Var(value.var.name)
        if isinstance(value, PNode) and not value.edges:
            label = value.label
            return Var(label.name) if isinstance(label, Var) else label
        if isinstance(value, SymRef):
            return Var(value.functor)
        if rename_unbound:
            raise CustomizationError(
                f"variable {expr.name} binds a structured fragment and "
                f"cannot be carried into a condition"
            )
        return expr

    def _rename(self, name: str, state: "_EnvState") -> str:
        existing = state.renaming.get(name)
        if existing is None:
            existing = self.renamer.fresh(name)
            state.renaming[name] = existing
        return existing

    def _rename_tree(self, tree: PChild, state: "_EnvState") -> PChild:
        """Rewrite a carried body pattern: substitute symbolically bound
        variables and rename the unbound ones apart."""
        from ..core.patterns import rename_variables

        mapping: Dict[str, str] = {}
        for var in collect_variables(tree):
            value = state.env.get(var.name)
            if value is None and var.name not in state.substitution:
                mapping[var.name] = self._rename(var.name, state)
        return rename_variables(tree, mapping)

    def _agreed(self, name: str, states: List["_EnvState"]) -> SymValue:
        values = []
        for state in states:
            folded = state.substitution.get(name)
            value = folded if folded is not None else state.env.get(name)
            if value is None:
                value = Var(self._rename(name, state))
            values.append(value)
        first = values[0]
        for value in values[1:]:
            if _sym_differs(value, first):
                raise CustomizationError(
                    f"variable {name} specializes to conflicting values "
                    f"({first!r} vs {value!r}); the pattern is ambiguous"
                )
        return first

    def _agreed_arg(self, arg, states: List["_EnvState"]) -> SymValue:
        if not isinstance(arg, (Var, PatternVar)):
            return arg
        return self._agreed(arg.name, states)


def _sym_differs(a: SymValue, b: SymValue) -> bool:
    return a != b


class _EnvState:
    """One symbolic environment plus its variable-renaming bookkeeping
    and the conditions it carries into the derived rule."""

    __slots__ = ("env", "renaming", "substitution", "calls", "predicates")

    def __init__(self, env: SymEnv, renaming: Dict[str, str]) -> None:
        self.env = env
        self.renaming = renaming
        self.substitution: Dict[str, Label] = {}
        self.calls: List[FunctionCall] = []
        self.predicates: List[Predicate] = []


def _sym_expr(expr: Expr, env: SymEnv) -> Expr:
    if isinstance(expr, (Var, PatternVar)):
        value = env.get(expr.name)
        if is_label(value):
            return value
        if isinstance(value, PNode) and not value.edges and is_label(value.label):
            return value.label
        return expr
    return expr


def _as_pattern_child(value: SymValue) -> PChild:
    if isinstance(value, (PNode, PVarLeaf, PNameLeaf, PRefLeaf)):
        return value
    if isinstance(value, Var):
        return PNode(value)
    if isinstance(value, SymRef):
        return PRefLeaf(NameTerm(value.functor, value.args))
    if is_label(value):
        return PNode(value)
    raise CustomizationError(f"cannot place value {value!r} in a head")


# ---------------------------------------------------------------------------
# Hole preprocessing
# ---------------------------------------------------------------------------


def open_holes(tree: PChild, renamer: Renamer) -> PChild:
    """Replace pattern-name leaves (``Ptype``) by typed pattern-variable
    holes so the derived rule can bind them at run time."""
    if isinstance(tree, PNameLeaf) and not tree.term.args:
        fresh = renamer.fresh("P")
        return PVarLeaf(PatternVar(fresh, tree.term.functor))
    if isinstance(tree, PNode):
        edges = [
            edge.with_target(open_holes(edge.target, renamer)) for edge in tree.edges
        ]
        return PNode(tree.label, edges)
    return tree


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def derive_rule(
    program: Program,
    pattern: Pattern,
    alternative: PChild,
    context_model: Optional[Model] = None,
    name: Optional[str] = None,
    reserved: Optional[Set[str]] = None,
) -> Rule:
    """Derive the specialized rule a program becomes on one pattern
    alternative (rule WebCar from the Web program and ``Pcar``)."""
    reserved_names = set(reserved or set())
    for var in collect_variables(alternative):
        reserved_names.add(var.name)
    renamer = Renamer(reserved_names)
    subject = open_holes(alternative, renamer)
    specializer = _Specializer(program, context_model, renamer)
    candidates = specializer.applicable(subject)
    if not candidates:
        raise CustomizationError(
            f"no rule of program {program.name!r} applies to pattern "
            f"{pattern.name!r}"
        )
    rule, envs = candidates[0]
    derivation = specializer._derive_with(rule, envs, 0)
    assert rule.head is not None
    head_args = []
    for arg in rule.head.term.args:
        if isinstance(arg, (Var, PatternVar)):
            value = envs[0].get(arg.name)
            if isinstance(value, (PNode, PVarLeaf, PNameLeaf, PRefLeaf)) and (
                value is subject
            ):
                head_args.append(Var(pattern.name))
                continue
            substituted = specializer._substitute_expr(
                arg, _EnvState(envs[0], {}), rename_unbound=False
            )
            head_args.append(substituted if not isinstance(substituted, PatternVar)
                             else Var(substituted.name))
        else:
            head_args.append(arg)
    head = HeadPattern(NameTerm(rule.head.term.functor, head_args), derivation.head)
    body = [BodyPattern(pattern.name, subject)] + derivation.body
    # Rule's constructor turns `&Psup` in the body into a binding
    # reference now that a body pattern named Psup exists.
    return Rule(
        name or f"{rule.name}{pattern.name}",
        head,
        body,
        derivation.predicates,
        derivation.calls,
    )


def instantiate_program(
    program: Program,
    patterns: Union[Pattern, Sequence[Pattern], Model],
    name: Optional[str] = None,
) -> Program:
    """Instantiate *program* on the given pattern(s) (Section 4.1).

    Returns a new program with one derived rule per (pattern,
    alternative); the original general rules are **not** included — use
    :meth:`Program.combined_with` to layer the specialized program over
    the general one (Section 4.2).
    """
    if isinstance(patterns, Pattern):
        pattern_list = [patterns]
        context = None
    elif isinstance(patterns, Model):
        pattern_list = patterns.patterns()
        context = patterns
    else:
        pattern_list = list(patterns)
        context = None
    if context is None:
        context = Model("instantiation-context")
        for pattern in pattern_list:
            context.add(pattern)
    derived = Program(
        name or f"{program.name}@{'+'.join(p.name for p in pattern_list)}",
        registry=program.registry,
        input_model=context,
        output_model=program.output_model,
    )
    for pattern in pattern_list:
        for index, alternative in enumerate(pattern.alternatives):
            suffix = "" if len(pattern.alternatives) == 1 else f"_{index + 1}"
            try:
                rule = derive_rule(
                    program,
                    pattern,
                    alternative,
                    context_model=context,
                    name=None,
                )
            except CustomizationError:
                continue  # this pattern has no applicable rule: skip it
            if suffix:
                rule.name += suffix
            derived.add_rule(rule)
    if not derived.rules:
        raise CustomizationError(
            f"program {program.name!r} could not be instantiated on any of: "
            f"{', '.join(p.name for p in pattern_list)}"
        )
    return derived
