"""Variable bindings produced by body matching (Section 3.1, phase 1).

A binding maps variable names to values: constants for data variables,
trees for pattern variables. Bindings are immutable — extending one
produces a new binding — so the matcher can explore alternatives without
copying state back out.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.labels import Label, label_repr
from ..core.trees import Ref, Tree
from ..core.variables import PatternVar, Var
from ..errors import EvaluationError

Value = Union[Label, Tree, Ref]


class Binding:
    """An immutable mapping from variable names to values."""

    __slots__ = ("_items", "_hash")

    EMPTY: "Binding"

    def __init__(self, items: Optional[Dict[str, Value]] = None) -> None:
        object.__setattr__(self, "_items", dict(items) if items else {})
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Binding is immutable")

    # -- access -------------------------------------------------------------

    def get(self, var: Union[Var, PatternVar, str]) -> Optional[Value]:
        name = var if isinstance(var, str) else var.name
        return self._items.get(name)

    def __getitem__(self, var: Union[Var, PatternVar, str]) -> Value:
        name = var if isinstance(var, str) else var.name
        try:
            return self._items[name]
        except KeyError:
            raise EvaluationError(f"unbound variable {name!r}") from None

    def __contains__(self, var: Union[Var, PatternVar, str]) -> bool:
        name = var if isinstance(var, str) else var.name
        return name in self._items

    def names(self) -> List[str]:
        return list(self._items)

    def items(self) -> Iterator[Tuple[str, Value]]:
        return iter(self._items.items())

    def __len__(self) -> int:
        return len(self._items)

    # -- extension ----------------------------------------------------------

    def bind(self, var: Union[Var, PatternVar, str], value: Value) -> Optional["Binding"]:
        """Bind *var* to *value*; returns None on a conflicting binding
        (the same variable already holds a different value — this is how
        shared variables implement joins, Section 3.2)."""
        name = var if isinstance(var, str) else var.name
        existing = self._items.get(name)
        if existing is not None or name in self._items:
            return self if existing == value else None
        extended = dict(self._items)
        extended[name] = value
        return Binding(extended)

    def merge(self, other: "Binding") -> Optional["Binding"]:
        """Combine two bindings; None if they disagree on any variable."""
        if len(other._items) < len(self._items):
            return other.merge(self)
        merged = dict(other._items)
        for name, value in self._items.items():
            existing = merged.get(name)
            if existing is None and name not in merged:
                merged[name] = value
            elif existing != value:
                return None
        return Binding(merged)

    def project(self, names: Sequence[str]) -> Tuple[Value, ...]:
        """Values of *names* in order (used for Skolem and grouping keys)."""
        return tuple(self._items.get(name) for name in names)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Binding) and other._items == self._items

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._items.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = "; ".join(
            f"{name}={_render_value(value)}" for name, value in self._items.items()
        )
        return f"[ {inner} ]"


Binding.EMPTY = Binding()


def _render_value(value: Value) -> str:
    if isinstance(value, Tree):
        text = str(value).replace("\n", " ")
        return text if len(text) <= 40 else text[:37] + "..."
    if isinstance(value, Ref):
        return str(value)
    return label_repr(value)


def dedup_bindings(bindings: Sequence[Binding]) -> List[Binding]:
    """Remove duplicate bindings, preserving first-occurrence order."""
    seen = set()
    unique: List[Binding] = []
    for binding in bindings:
        if binding not in seen:
            seen.add(binding)
            unique.append(binding)
    return unique
