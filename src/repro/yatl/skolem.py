"""Skolem functions: global identifier management (Section 3.1, phase 4).

"Skolem functions are not dependent of a given rule but are global to a
program" — a single :class:`SkolemTable` is shared by every rule of a
program run. It maps ``(functor, argument values)`` to generated
identifiers (``s1``, ``s2``, ...) and each identifier to the value tree
the rules associate with it. Associating two distinct values to one
identifier raises the paper's run-time non-determinism alert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.labels import Label, label_repr
from ..core.trees import Ref, Tree
from ..errors import NonDeterminismError

SkolemValue = Union[Label, Tree, Ref]
SkolemKey = Tuple[str, Tuple[SkolemValue, ...]]


class SkolemTable:
    """Global (functor, args) → identifier → value bookkeeping."""

    def __init__(self) -> None:
        self._ids: Dict[SkolemKey, str] = {}
        self._keys: Dict[str, SkolemKey] = {}
        self._values: Dict[str, Tree] = {}
        self._counters: Dict[str, int] = {}
        self._prefixes: Dict[str, str] = {}  # functor -> id prefix
        self._used_prefixes: Dict[str, str] = {}  # prefix -> functor
        # Observability accounting (plain ints: id_for is on the hot
        # path of every constructed output; the interpreter flushes
        # them into the run's MetricsRegistry once, at the end).
        #: identifiers allocated for a first-seen (functor, args) term
        self.fresh_ids = 0
        #: lookups resolved to an already-allocated identifier — the
        #: paper's "one supplier object per name across brochures"
        self.reused_ids = 0

    # -- identifiers --------------------------------------------------------

    def id_for(self, functor: str, args: Tuple[SkolemValue, ...]) -> str:
        """The identifier for a Skolem term, allocating it on first use.

        The same term always maps to the same identifier, which is what
        makes Rule 1 create a single supplier object for a supplier name
        appearing in several brochures (Figure 3)."""
        key = (functor, tuple(args))
        existing = self._ids.get(key)
        if existing is not None:
            self.reused_ids += 1
            return existing
        prefix = self._prefix_for(functor)
        self._counters[prefix] = self._counters.get(prefix, 0) + 1
        new_id = f"{prefix}{self._counters[prefix]}"
        self._ids[key] = new_id
        self._keys[new_id] = key
        self.fresh_ids += 1
        return new_id

    def lookup(self, functor: str, args: Tuple[SkolemValue, ...]) -> Optional[str]:
        return self._ids.get((functor, tuple(args)))

    def key_of(self, identifier: str) -> SkolemKey:
        return self._keys[identifier]

    def functor_of(self, identifier: str) -> str:
        return self._keys[identifier][0]

    def ids(self) -> List[str]:
        return list(self._keys)

    def allocation_log(self) -> List[Tuple[str, str, Tuple[SkolemValue, ...]]]:
        """Every allocation as ``(identifier, functor, args)``, in
        allocation order. Replaying the log through a fresh table's
        :meth:`id_for` reproduces the numbering exactly — the shard
        merge of :mod:`repro.parallel` reconciles worker-local tables
        into one canonical table this way."""
        return [
            (identifier, functor, args)
            for identifier, (functor, args) in self._keys.items()
        ]

    def term_text(self, identifier: str) -> str:
        """The Skolem term behind an identifier, rendered compactly
        (``Psup('VW center')``) — what provenance records carry. Tree
        arguments render as their root label only: this runs once per
        recorded rule firing, so it must stay O(1) in the tree size."""
        functor, args = self._keys[identifier]
        rendered = ", ".join(_render_arg_brief(a) for a in args)
        return f"{functor}({rendered})"

    def ids_of_functor(self, functor: str) -> List[str]:
        return [i for i, (f, _) in self._keys.items() if f == functor]

    def _prefix_for(self, functor: str) -> str:
        cached = self._prefixes.get(functor)
        if cached is not None:
            return cached
        # "Psup" -> "s", "Pcar" -> "c", "HtmlPage" -> "htmlpage1"-style
        # fallbacks on collision.
        base = functor
        if len(base) > 1 and base[0] == "P" and base[1].islower():
            base = base[1:]
        candidates = [base[:k].lower() for k in range(1, len(base) + 1)]
        candidates.append(functor.lower() + "_")
        for candidate in candidates:
            owner = self._used_prefixes.get(candidate)
            if owner is None or owner == functor:
                self._used_prefixes[candidate] = functor
                self._prefixes[functor] = candidate
                return candidate
        raise AssertionError("unreachable: fallback prefix is always unique")

    # -- values -------------------------------------------------------------

    def associate(self, identifier: str, value: Tree) -> None:
        """Associate a value with an identifier; raises
        :class:`NonDeterminismError` on a conflicting association."""
        existing = self._values.get(identifier)
        if existing is None:
            self._values[identifier] = value
        elif existing != value:
            functor, args = self._keys.get(identifier, (identifier, ()))
            rendered = ", ".join(_render_arg(a) for a in args)
            raise NonDeterminismError(
                f"{functor}({rendered})",
                f"non-deterministic program: {functor}({rendered}) (= {identifier}) "
                f"is associated to two distinct values",
            )

    def value(self, identifier: str) -> Optional[Tree]:
        return self._values.get(identifier)

    def has_value(self, identifier: str) -> bool:
        return identifier in self._values

    def values(self) -> Dict[str, Tree]:
        return dict(self._values)

    def stats(self) -> Dict[str, int]:
        """Table accounting: ids allocated/reused, values associated."""
        return {
            "fresh_ids": self.fresh_ids,
            "reused_ids": self.reused_ids,
            "table_size": len(self._keys),
            "values_associated": len(self._values),
        }

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return f"SkolemTable({len(self._keys)} ids, {len(self._values)} values)"


def _render_arg(value: SkolemValue) -> str:
    if isinstance(value, Tree):
        text = str(value).replace("\n", " ")
        return text if len(text) <= 30 else text[:27] + "..."
    if isinstance(value, Ref):
        return str(value)
    return label_repr(value)


def _render_arg_brief(value: SkolemValue) -> str:
    if isinstance(value, Tree):
        label = label_repr(value.label)
        return f"{label}<...>" if value.children else label
    if isinstance(value, Ref):
        return str(value)
    return label_repr(value)
