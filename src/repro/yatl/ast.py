"""Abstract syntax of YATL rules (Section 3.1).

A rule is ``head <= body``:

* the **head** is a single pattern whose name may be parameterized — an
  explicit Skolem function (``Psup(SN)``); a rule may also have an
  *empty head* (the Rule Exception of Section 3.5);
* the **body** contains named patterns that *filter* the input, boolean
  predicates, and external function calls that *compute* additional
  data (``C is city(Add)``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple, Union

from ..core.labels import Label, is_label, label_repr
from ..core.patterns import (
    NameTerm,
    PChild,
    PRefLeaf,
    collect_name_terms,
    collect_variables,
    render_pattern_tree,
)
from ..core.variables import PatternVar, Var
from ..errors import ModelError

#: An expression usable in predicates and function arguments: a data
#: variable, a pattern variable, or a constant.
Expr = Union[Var, PatternVar, Label]


def render_expr(expr: Expr) -> str:
    if isinstance(expr, (Var, PatternVar)):
        return str(expr)
    return label_repr(expr)


class BodyPattern:
    """A named pattern in a rule body, e.g. ``Pbr : brochure < ... >``.

    The name is a *pattern variable*: it binds the matched tree and can
    be used as a Skolem argument (``Pcar(Pbr)``) or shared with other
    body patterns.
    """

    __slots__ = ("name", "tree")

    def __init__(self, name: Union[PatternVar, str], tree: PChild) -> None:
        if isinstance(name, str):
            name = PatternVar(name)
        self.name = name
        self.tree = tree

    def variables(self) -> Set[Union[Var, PatternVar]]:
        return {self.name} | collect_variables(self.tree)

    def __repr__(self) -> str:
        return f"BodyPattern({self.name!r})"

    def __str__(self) -> str:
        return f"{self.name} : {render_pattern_tree(self.tree)}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BodyPattern)
            and other.name == self.name
            and other.tree == self.tree
        )


class Predicate:
    """A boolean comparison, e.g. ``Year > 1975``."""

    OPS = ("=", "!=", "<", "<=", ">", ">=")

    __slots__ = ("op", "left", "right")

    def __init__(self, left: Expr, op: str, right: Expr) -> None:
        if op not in self.OPS:
            raise ModelError(f"unknown predicate operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def variables(self) -> Set[Union[Var, PatternVar]]:
        return {e for e in (self.left, self.right) if isinstance(e, (Var, PatternVar))}

    def __repr__(self) -> str:
        return f"Predicate({self})"

    def __str__(self) -> str:
        return f"{render_expr(self.left)} {self.op} {render_expr(self.right)}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )


class FunctionCall:
    """An external function call: ``C is city(Add)``.

    ``result`` is ``None`` for boolean external predicates used directly
    as filters (``sameaddress(Add, C, Add2)``) and for effectful calls
    such as the exception function of Section 3.5.
    """

    __slots__ = ("result", "function", "args")

    def __init__(
        self, result: Optional[Var], function: str, args: Sequence[Expr] = ()
    ) -> None:
        self.result = result
        self.function = function
        self.args = tuple(args)

    def variables(self) -> Set[Union[Var, PatternVar]]:
        found = {a for a in self.args if isinstance(a, (Var, PatternVar))}
        if self.result is not None:
            found.add(self.result)
        return found

    def __repr__(self) -> str:
        return f"FunctionCall({self})"

    def __str__(self) -> str:
        call = f"{self.function}({', '.join(render_expr(a) for a in self.args)})"
        if self.result is None:
            return call
        return f"{self.result.name} is {call}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionCall)
            and other.result == self.result
            and other.function == self.function
            and other.args == self.args
        )


class HeadPattern:
    """The head of a rule: a Skolem-named pattern ``Psup(SN) : tree``."""

    __slots__ = ("term", "tree")

    def __init__(self, term: Union[NameTerm, str], tree: PChild) -> None:
        if isinstance(term, str):
            term = NameTerm(term)
        self.term = term
        self.tree = tree

    def variables(self) -> Set[Union[Var, PatternVar]]:
        return set(self.term.args) | collect_variables(self.tree)

    def skolem_occurrences(self) -> List[Tuple[NameTerm, bool]]:
        """All Skolem terms in the head tree as (term, is_reference)."""
        return collect_name_terms(self.tree)

    def __repr__(self) -> str:
        return f"HeadPattern({self.term!r})"

    def __str__(self) -> str:
        return f"{self.term} :\n{render_pattern_tree(self.tree, indent=2)}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HeadPattern)
            and other.term == self.term
            and other.tree == self.tree
        )


class Rule:
    """A YATL rule. ``head`` is ``None`` for empty-head rules, which act
    as fallbacks applied only when no other rule matches (Section 3.5)."""

    def __init__(
        self,
        name: str,
        head: Optional[HeadPattern],
        body: Sequence[BodyPattern],
        predicates: Sequence[Predicate] = (),
        calls: Sequence[FunctionCall] = (),
    ) -> None:
        if not body:
            raise ModelError(f"rule {name!r} needs at least one body pattern")
        self.name = name
        self.head = head
        # A `&Name` reference in a body whose target names a body pattern
        # of the same rule is a *binding* reference: matching follows the
        # reference and the named pattern constrains the referenced tree
        # (rule Web6). Normalizing here keeps programmatic construction
        # and parsing consistent.
        body_names = {bp.name.name for bp in body}
        self.body = [
            BodyPattern(bp.name, bind_body_refs(bp.tree, body_names))
            for bp in body
        ]
        self.predicates = list(predicates)
        self.calls = list(calls)

    # -- analysis -----------------------------------------------------------

    @property
    def is_fallback(self) -> bool:
        return self.head is None

    @property
    def head_functor(self) -> Optional[str]:
        return self.head.term.functor if self.head is not None else None

    def variables(self) -> Set[Union[Var, PatternVar]]:
        found: Set[Union[Var, PatternVar]] = set()
        for item in self.body:
            found |= item.variables()
        for item in self.predicates:
            found |= item.variables()
        for item in self.calls:
            found |= item.variables()
        if self.head is not None:
            found |= self.head.variables()
        return found

    def head_skolems(self) -> List[Tuple[NameTerm, bool]]:
        """Skolem terms appearing in the head: the head's own term plus
        every (term, is_reference) occurrence inside the head tree."""
        if self.head is None:
            return []
        return [(self.head.term, False)] + self.head.skolem_occurrences()

    def body_pattern_names(self) -> List[PatternVar]:
        return [bp.name for bp in self.body]

    def root_body_patterns(self) -> List[BodyPattern]:
        """Body patterns whose name is *not* bound by some other body
        pattern's leaf — these range over the input set; the others match
        trees bound by reference or pattern-variable leaves."""
        bound_elsewhere: Set[str] = set()
        for bp in self.body:
            for var in collect_variables(bp.tree):
                if isinstance(var, PatternVar):
                    bound_elsewhere.add(var.name)
        return [bp for bp in self.body if bp.name.name not in bound_elsewhere]

    def __repr__(self) -> str:
        return f"Rule({self.name!r})"

    def __str__(self) -> str:
        from .printer import render_rule  # deferred: printer imports ast

        return render_rule(self)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and other.name == self.name
            and other.head == self.head
            and other.body == self.body
            and other.predicates == self.predicates
            and other.calls == self.calls
        )


def bind_body_refs(tree: PChild, body_names: Set[str]) -> PChild:
    """Rewrite ``&Name`` reference leaves whose target names a body
    pattern into pattern-variable references (see :class:`Rule`)."""
    from ..core.patterns import PEdge, PNode  # local to avoid re-export noise

    if isinstance(tree, PRefLeaf):
        target = tree.target
        if (
            isinstance(target, NameTerm)
            and not target.args
            and target.functor in body_names
        ):
            return PRefLeaf(PatternVar(target.functor))
        return tree
    if isinstance(tree, PNode):
        edges = [
            edge.with_target(bind_body_refs(edge.target, body_names))
            for edge in tree.edges
        ]
        if edges == list(tree.edges):
            return tree
        return PNode(tree.label, edges)
    return tree


def make_expr(value: object) -> Expr:
    """Coerce a Python value into an expression (string → variable if it
    starts uppercase, else symbol is *not* assumed: plain strings are
    string atoms; use ``Var``/``Symbol`` for anything else)."""
    if isinstance(value, (Var, PatternVar)):
        return value
    if is_label(value):
        return value
    raise ModelError(f"invalid expression: {value!r}")
