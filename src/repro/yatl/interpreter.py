"""The YATL interpreter (Sections 3.1, 3.4, 4.2).

A rule application processes its input in five phases:

1. match the body patterns, producing variable bindings;
2. evaluate external functions (after the type filter);
3. apply predicates to filter the bindings;
4. evaluate Skolem functions (global to the program);
5. construct the output patterns and associate them to their names.

Program evaluation adds: rule-hierarchy dispatch (more specific rules
shadow general ones per input, Section 4.2), demand-driven evaluation of
dereferenced Skolems on subtrees (the safe-recursive programs of
Sections 3.4/4.1), dereference splicing "at the end of rules
processing", and the optional run-time typing of Section 3.5 (inputs
converted by no rule raise, or feed empty-head fallback rules).
"""

from __future__ import annotations

import time
import warnings as _warnings
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.arena import ArenaStore
from ..core.trees import DataStore, Ref, Tree
from ..errors import (
    CyclicProgramError,
    DanglingReferenceError,
    FunctionError,
    UnconvertedDataError,
)
from ..obs import MetricsRegistry, ambient_registry, span
from ..obs.metrics import TIME_BUCKETS
from ..obs.provenance import ProvenanceStore, ambient_provenance
from .arena_exec import ArenaEngine
from .ast import Expr, FunctionCall, Rule
from .bindings import Binding, Value
from .construction import (
    Constructor,
    Unbound,
    deref_target,
    is_deref_placeholder,
)
from .dispatch import DispatchStats
from .functions import FunctionRegistry, evaluate_comparison, standard_registry
from .hierarchy import Hierarchy
from .matching import MatchContext, match_body
from .skolem import SkolemTable
from ..core.variables import PatternVar, Var

# Metric names (the catalog lives in docs/OBSERVABILITY.md). Per-rule
# metrics carry a ``rule`` label; everything else is unlabelled.
M_RULE_APPLICATIONS = "yatl.rule.applications"
M_RULE_MATCHED = "yatl.rule.bindings_matched"
M_RULE_AFTER_CALLS = "yatl.rule.bindings_after_calls"
M_RULE_AFTER_PREDICATES = "yatl.rule.bindings_after_predicates"
M_RULE_OUTPUTS = "yatl.rule.outputs"
M_RULE_SECONDS = "yatl.rule.seconds"
M_CONSTRUCT_GROUPS = "yatl.construct.groups"
M_CONSTRUCT_SKIPPED = "yatl.construct.skipped_unbound"
M_DEMAND_ITERATIONS = "yatl.demand.iterations"
M_DEMAND_ROUNDS = "yatl.demand.rounds"
M_INPUT_TREES = "yatl.inputs.total"
M_INPUT_CONVERTED = "yatl.inputs.converted"
M_INPUT_UNCONVERTED = "yatl.inputs.unconverted"
M_OUTPUT_TREES = "yatl.outputs.trees"
M_WARNINGS = "yatl.warnings"
M_BATCHES = "yatl.batches"
M_DISPATCH_INDEXED = "yatl.dispatch.indexed_calls"
M_DISPATCH_UNINDEXED = "yatl.dispatch.unindexed_calls"
M_DISPATCH_CONSIDERED = "yatl.dispatch.subjects_considered"
M_DISPATCH_ADMITTED = "yatl.dispatch.subjects_admitted"
M_DISPATCH_ADMIT_CHECKS = "yatl.dispatch.admit_checks"
M_DISPATCH_ADMIT_REJECTIONS = "yatl.dispatch.admit_rejections"
M_DISPATCH_HIT_RATIO = "yatl.dispatch.hit_ratio"
M_DISPATCH_REDUCTION = "yatl.dispatch.candidate_reduction_ratio"
M_SKOLEM_FRESH = "yatl.skolem.ids_fresh"
M_SKOLEM_REUSED = "yatl.skolem.ids_reused"
M_SKOLEM_SIZE = "yatl.skolem.table_size"
M_MATCH_COVERAGE_MEMO_HITS = "yatl.match.coverage_memo_hits"
M_PROVENANCE_FIRINGS = "yatl.provenance.firings"
M_PROVENANCE_RECORDS = "yatl.provenance.records"


class ConversionResult:
    """Outcome of a program run.

    ``store`` maps generated identifiers to their (dereferenced) trees;
    ``skolems`` exposes the Skolem table for identifier introspection;
    ``unconverted`` lists input trees no rule matched — fallback
    (empty-head) rules count as matching, so an input a fallback handled
    is *not* reported unconverted; ``warnings`` collects non-fatal
    anomalies (filtered function errors, dangling references in
    non-strict mode...); ``metrics`` is the run's
    :class:`~repro.obs.MetricsRegistry` — per-rule phase counters,
    dispatch-index hit and candidate-reduction ratios, Skolem table
    stats (see docs/OBSERVABILITY.md for the catalog); ``provenance``
    is the run's :class:`~repro.obs.ProvenanceStore` — name-level
    origins for every output (always exact), plus per-firing lineage
    records with backward/forward queries when a store was installed
    (``Interpreter(provenance=...)`` or the ambient
    :func:`repro.obs.tracing`).
    """

    def __init__(
        self,
        store: DataStore,
        skolems: SkolemTable,
        unconverted: List[Tree],
        warnings: List[str],
        provenance: Optional[ProvenanceStore] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.skolems = skolems
        self.unconverted = unconverted
        self.warnings = warnings
        #: per-node lineage for this run (see docs/OBSERVABILITY.md)
        self.provenance: ProvenanceStore = (
            provenance if provenance is not None else ProvenanceStore()
        )
        #: runtime accounting for this run
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )

    def ids_of(self, functor: str) -> List[str]:
        """Identifiers generated for a Skolem functor, in creation order."""
        return [i for i in self.skolems.ids_of_functor(functor) if i in self.store]

    def trees_of(self, functor: str) -> List[Tree]:
        return [self.store.get(i) for i in self.ids_of(functor)]

    def tree(self, identifier: str) -> Tree:
        return self.store.get(identifier)

    def lineage(self, identifier: str) -> Set[str]:
        """The input-tree names an output was derived from (mediator
        lineage — which sources fed this integrated object). A view
        over ``provenance.origins_of``; always exact, recorder or not."""
        return self.provenance.origins_of(identifier)

    def derived_from(self, input_name: str) -> List[str]:
        """Outputs whose derivation involved the named input tree."""
        return [
            identifier
            for identifier in self.store.names()
            if input_name in self.provenance.origins_of(identifier)
        ]

    def __repr__(self) -> str:
        return (
            f"ConversionResult({len(self.store)} trees, "
            f"{len(self.unconverted)} unconverted, "
            f"{len(self.warnings)} warning(s))"
        )


class Interpreter:
    """Evaluates a rule set over a data store.

    Parameters
    ----------
    rules:
        The program's rules (any iterable; order is the tie-break for
        hierarchy dispatch).
    registry:
        External functions; defaults to the standard library.
    model:
        Optional model for typed pattern variables and name leaves.
    hierarchy:
        Prebuilt rule hierarchy; computed on demand otherwise.
    runtime_typing:
        Section 3.5's run-time check: raise
        :class:`~repro.errors.UnconvertedDataError` when an input tree
        is matched by no rule — not even a fallback rule.
    strict_refs:
        Raise on dangling ``&`` references instead of warning.
    use_dispatch_index:
        Pre-filter each rule's candidate subjects through the
        root-signature dispatch index (see :mod:`.dispatch`). On by
        default; disable to measure the unindexed O(rules × inputs)
        behaviour (the benchmark's ``--no-index`` ablation).
    use_arena:
        Evaluate :class:`~repro.core.arena.ArenaStore` inputs on the
        columnar batch path (see :mod:`.arena_exec`): compilable rules
        run as flat column comparisons, the rest fall back to the tree
        matcher over lazily materialized candidates. Outputs are
        byte-identical either way. Disable (the benchmark's
        ``--no-arena`` ablation) to convert arena inputs to a
        :class:`~repro.core.trees.DataStore` up front and run the plain
        tree path. Irrelevant for non-arena inputs.
    workers:
        Evaluate the top-level input forest with the multi-process
        executor of :mod:`repro.parallel`: the inputs are split into
        contiguous chunks, each chunk runs through its own interpreter
        with an isolated Skolem table, and the chunk results are merged
        back deterministically (Skolem identifiers reconciled by
        canonical term). ``workers=1`` runs the same chunk plan
        serially in-process, so ``workers=N`` output is always
        byte-identical to ``workers=1`` — see docs/PERFORMANCE.md.
        ``None`` (default) keeps the plain single-pass evaluation.
    chunk_size:
        Inputs per chunk for ``workers=``; defaults to a heuristic that
        leaves small forests on the plain in-process path.
    executor:
        A shared :class:`repro.parallel.ParallelExecutor` (e.g. the
        serve plane's per-process pool); without one an ephemeral pool
        is created per run when ``workers > 1``.
    parallel_safe_batches:
        Deprecated — use ``workers=``/``chunk_size=``. Historically
        this only *partitioned* the inputs into contiguous batches
        evaluated sequentially in one process (it never ran anything
        concurrently, despite the name). It now maps onto the sharded
        executor with ``workers=1`` and that many chunks, which keeps
        the old contract: results equivalent to a single pass, with
        identifiers numbered in chunk order rather than rule-major
        order.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to account the run(s)
        into. When omitted, each run uses the ambient registry
        installed by :func:`repro.obs.collecting` if there is one
        (pipelines and the CLI aggregate that way), or a fresh
        registry otherwise; either way the registry is surfaced on
        ``ConversionResult.metrics``.
    provenance:
        A :class:`~repro.obs.ProvenanceStore` to record per-firing
        lineage into. When omitted, each run uses the ambient store
        installed by :func:`repro.obs.tracing` if there is one; with
        neither, only the always-on name-level origins are kept (no
        per-firing records — the zero-overhead default).
    program_name:
        Stamped on every provenance record this interpreter emits, so
        cross-program chains name the program each hop came from.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        registry: Optional[FunctionRegistry] = None,
        model=None,
        hierarchy: Optional[Hierarchy] = None,
        runtime_typing: bool = False,
        strict_refs: bool = False,
        max_demand_iterations: int = 100_000,
        target_functors: Optional[Sequence[str]] = None,
        use_dispatch_index: bool = True,
        use_arena: bool = True,
        parallel_safe_batches: Optional[int] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        executor=None,
        metrics: Optional[MetricsRegistry] = None,
        provenance: Optional[ProvenanceStore] = None,
        program_name: Optional[str] = None,
    ) -> None:
        self.rules = list(rules)
        self.registry = registry or standard_registry()
        self.model = model
        self.hierarchy = hierarchy or Hierarchy(self.rules, model=model)
        self.runtime_typing = runtime_typing
        self.strict_refs = strict_refs
        self.max_demand_iterations = max_demand_iterations
        self.metrics = metrics
        self.provenance = provenance
        self.program_name = program_name
        self.dispatch = self.hierarchy.dispatch_index() if use_dispatch_index else None
        self.use_arena = use_arena
        if parallel_safe_batches is not None and parallel_safe_batches < 1:
            raise ValueError("parallel_safe_batches must be >= 1")
        if parallel_safe_batches is not None:
            _warnings.warn(
                "parallel_safe_batches is deprecated; use workers= and "
                "chunk_size= (it maps onto the sharded executor of "
                "repro.parallel with workers=1)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.parallel_safe_batches = parallel_safe_batches
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.executor = executor
        self.target_functors = (
            list(target_functors) if target_functors is not None else None
        )
        # Targeted evaluation (the paper's future work: "querying the
        # target data representation without materializing it"): when
        # target functors are given, only the rules those functors
        # transitively need — through Skolem references *and*
        # dereferences — are evaluated.
        self.needed_functors: Optional[Set[str]] = (
            self._transitive_functors(target_functors)
            if target_functors is not None
            else None
        )

    def _transitive_functors(self, targets: Sequence[str]) -> Set[str]:
        dependencies: Dict[str, Set[str]] = {}
        for rule in self.rules:
            if rule.head is None:
                continue
            functor = rule.head.term.functor
            uses = dependencies.setdefault(functor, set())
            for term, _ in rule.head.skolem_occurrences():
                uses.add(term.functor)
        needed: Set[str] = set()
        frontier = list(targets)
        while frontier:
            functor = frontier.pop()
            if functor in needed:
                continue
            needed.add(functor)
            frontier.extend(dependencies.get(functor, ()))
        return needed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, data: Union[DataStore, Sequence[Tree], Tree]) -> ConversionResult:
        store = _as_store(data, self.use_arena)
        workers = self.workers
        chunk_count = None
        if workers is None and self.executor is not None:
            # A shared pool is an explicit opt-in: use its worker count.
            workers = self.executor.workers
        if workers is None and (self.parallel_safe_batches or 0) > 1:
            # Deprecated batching maps onto the sharded executor run
            # serially in-process: same contiguous partitions, one
            # reconciled Skolem table.
            workers, chunk_count = 1, self.parallel_safe_batches
        if workers is not None:
            from ..parallel import run_sharded  # cycle: parallel runs interpreters

            return run_sharded(
                self.shard_spec(),
                store,
                workers=workers,
                chunk_size=self.chunk_size,
                chunk_count=chunk_count,
                executor=self.executor,
                strict_refs=self.strict_refs,
                metrics=self.metrics,
                provenance=self.provenance,
            )
        return self.run_local(store)

    def run_local(self, data: Union[DataStore, Sequence[Tree], Tree]) -> ConversionResult:
        """One plain single-process pass (no sharding) — the execution
        primitive :mod:`repro.parallel` runs once per chunk."""
        store = _as_store(data, self.use_arena)
        state = _RunState(self, store)
        with span("yatl.run", rules=len(self.rules), inputs=state.n_inputs):
            state.metrics.counter(M_BATCHES).inc(1)
            state.apply_top_level()
            state.apply_fallbacks()
            state.demand_loop()
            return state.finish()

    def shard_spec(self):
        """The picklable description :mod:`repro.parallel` ships to
        worker processes to rebuild this interpreter per shard."""
        from ..parallel import ShardSpec

        return ShardSpec(
            rules=self.rules,
            registry=self.registry,
            model=self.model,
            hierarchy=self.hierarchy,
            runtime_typing=self.runtime_typing,
            max_demand_iterations=self.max_demand_iterations,
            target_functors=self.target_functors,
            use_dispatch_index=self.dispatch is not None,
            use_arena=self.use_arena,
            program_name=self.program_name,
        )

    # ------------------------------------------------------------------
    # Phases 1-3 for one rule
    # ------------------------------------------------------------------

    def rule_bindings(
        self,
        rule: Rule,
        input_trees: Sequence[Tree],
        mctx: MatchContext,
        warnings: List[str],
        metrics: Optional[MetricsRegistry] = None,
    ) -> List[Binding]:
        with span("yatl.rule", rule=rule.name, candidates=len(input_trees)):
            started = time.perf_counter() if metrics is not None else 0.0
            with span("yatl.phase.match", rule=rule.name):
                bindings = match_body(rule, input_trees, mctx)  # phase 1
            if metrics is not None:
                metrics.counter(M_RULE_APPLICATIONS).inc(rule=rule.name)
                metrics.counter(M_RULE_MATCHED).inc(len(bindings), rule=rule.name)
            if not bindings:
                if metrics is not None:
                    metrics.histogram(M_RULE_SECONDS, buckets=TIME_BUCKETS).observe(
                        time.perf_counter() - started, rule=rule.name
                    )
                return []
            with span("yatl.phase.call", rule=rule.name):
                bindings = self._evaluate_calls(rule, bindings, warnings)  # phase 2
            with span("yatl.phase.predicate", rule=rule.name):
                kept = self._apply_predicates(rule, bindings)  # phase 3
            if metrics is not None:
                metrics.counter(M_RULE_AFTER_CALLS).inc(
                    len(bindings), rule=rule.name
                )
                metrics.counter(M_RULE_AFTER_PREDICATES).inc(
                    len(kept), rule=rule.name
                )
                metrics.histogram(M_RULE_SECONDS, buckets=TIME_BUCKETS).observe(
                    time.perf_counter() - started, rule=rule.name
                )
            return kept

    def _evaluate_calls(
        self, rule: Rule, bindings: List[Binding], warnings: List[str]
    ) -> List[Binding]:
        for call in rule.calls:
            fn = self.registry.get(call.function)
            surviving: List[Binding] = []
            for binding in bindings:
                args = _argument_values(call, binding)
                if args is None or not fn.accepts(args):
                    continue  # the paper's type filter
                try:
                    result = fn(*args)
                except UnconvertedDataError:
                    raise
                except FunctionError as exc:
                    warnings.append(
                        f"rule {rule.name!r}: {call.function} filtered a "
                        f"binding: {exc}"
                    )
                    continue
                if call.result is None:
                    if result:
                        surviving.append(binding)
                    continue
                extended = binding.bind(call.result, result)  # type: ignore[arg-type]
                if extended is not None:
                    surviving.append(extended)
            bindings = surviving
            if not bindings:
                break
        return bindings

    def _apply_predicates(self, rule: Rule, bindings: List[Binding]) -> List[Binding]:
        for predicate in rule.predicates:
            surviving = []
            for binding in bindings:
                left = _expr_value(predicate.left, binding)
                right = _expr_value(predicate.right, binding)
                if left is _MISSING or right is _MISSING:
                    continue
                if evaluate_comparison(left, predicate.op, right):
                    surviving.append(binding)
            bindings = surviving
            if not bindings:
                break
        return bindings


# ---------------------------------------------------------------------------
# Run state
# ---------------------------------------------------------------------------


class _RunState:
    """Mutable state of one program run."""

    def __init__(self, interpreter: Interpreter, store: DataStore) -> None:
        self.interp = interpreter
        self.input_store = store
        # Arena inputs stay columnar: roots are matched by index and
        # decoded lazily, so `inputs` holds only what got materialized
        # (see ArenaEngine); everything downstream sizes itself off
        # `n_inputs` and fetches leftovers via `_leftover_inputs`.
        self.arena_engine: Optional[ArenaEngine] = None
        if isinstance(store, ArenaStore):
            self.arena_engine = ArenaEngine(self, store)
            self.inputs: List[Tree] = []
        else:
            self.inputs = store.trees()
        self.n_inputs = len(store)
        self.skolems = SkolemTable()
        self.warnings: List[str] = []
        # One registry per run unless the interpreter (or an ambient
        # `collecting` block) supplies a shared one. None checks, not
        # truthiness: an empty registry is falsy but still the sink.
        metrics = interpreter.metrics
        if metrics is None:
            metrics = ambient_registry()
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics: MetricsRegistry = metrics
        # Dispatch accounting: plain ints on the hot path, flushed into
        # the registry once, in finish().
        self.dispatch_stats = DispatchStats()
        self.match_ctx = MatchContext(store=store, model=interpreter.model)
        self.constructor = Constructor(self.skolems, self._on_skolem)
        # Demand-driven evaluation bookkeeping. Insertion-ordered dicts
        # (not sets): demand_loop iterates pending_deref, and set order
        # varies with the process hash seed — Skolem numbering must not.
        self.pending_deref: Dict[str, None] = {}
        self.pending_ref: Dict[str, None] = {}
        self.applied: Set[Tuple[str, Tree]] = set()  # (rule name, demand tree)
        # Rule names that *matched* a demand subject, keyed by the
        # subject itself. Persisted across demand iterations (and thus
        # shared by structurally-equal subjects) so a general rule stays
        # shadowed once a more specific one has matched the subject.
        self.demand_matched: Dict[Union[Tree, Ref], Set[str]] = {}
        self.matched_inputs: Set[int] = set()  # ids of converted input trees
        # Converted input trees by *value*: binding deduplication can
        # collapse structurally-equal inputs into one binding, so id()
        # bookkeeping alone under-reports conversions.
        self.matched_values: Set[Tree] = set()
        self.root_refs: Dict[str, Ref] = {}  # heads that built a bare reference
        self.order = interpreter.hierarchy.specific_first()
        # Hierarchy shadowing state, keyed by id(input tree); spans
        # batches (batches never share tree objects).
        self._matched_by: Dict[int, Set[str]] = {}
        # Dispatch-index candidate lists, shared between rules with
        # equivalent signatures; one cache per batch (see
        # RuleDispatchIndex.candidates).
        self._candidate_caches: Dict[int, Dict] = {}
        # Provenance: output identifier -> names of the input trees it
        # was derived from. Demand-driven outputs inherit the origins of
        # the output whose construction demanded them.
        self.provenance: Dict[str, Set[str]] = {}
        # For arena inputs the map is filled at materialization time
        # (iterating the store here would decode every root eagerly).
        self._input_names: Dict[int, str] = (
            {}
            if self.arena_engine is not None
            else {id(node): name for name, node in store}
        )
        self._active_origins: Set[str] = set()
        # Identifiers whose associated value is known reference-free
        # (the arena fast path never builds reference leaves — the
        # compiler rejects them): finish() skips their splice and
        # dangling-reference walks.
        self.ref_free_ids: Set[str] = set()
        # Detailed per-firing recorder: explicit or ambient, usually
        # None. Resolved once per run; when None the construct path pays
        # exactly one extra `is not None` check per output group.
        self.prov: Optional[ProvenanceStore] = interpreter.provenance
        if self.prov is None:
            self.prov = ambient_provenance()
        self.prov_firings = 0
        self.prov_records = 0

    # -- Skolem callback ------------------------------------------------------

    def _on_skolem(self, identifier: str, term, deref: bool) -> None:
        if deref:
            self.pending_deref[identifier] = None
        else:
            self.pending_ref[identifier] = None
        if self._active_origins:
            self.provenance.setdefault(identifier, set()).update(
                self._active_origins
            )

    # -- top-level application --------------------------------------------------

    def apply_top_level(self, inputs: Optional[List[Tree]] = None) -> None:
        """Apply every non-fallback rule over *inputs* (one batch; the
        whole input set by default), with hierarchy shadowing per root
        input tree. Fallback rules run afterwards, once, over the whole
        run's leftovers — see :meth:`apply_fallbacks`."""
        if inputs is None and self.arena_engine is not None:
            self._apply_top_level_arena()
            return
        if inputs is None:
            inputs = self.inputs
        needed = self.interp.needed_functors
        for rule in self.order:
            if rule.is_fallback:
                continue
            if needed is not None and rule.head_functor not in needed:
                continue  # targeted evaluation: this output is not queried
            self._apply_rule_with_shadowing(rule, inputs)

    def _apply_top_level_arena(self) -> None:
        """Top-level application over an arena: compilable rules run
        entirely on the columns (:meth:`ArenaEngine.apply_rule`); the
        rest run the existing tree path over candidates the engine
        prefilters — and lazily materializes — from the label/arity
        columns."""
        engine = self.arena_engine
        needed = self.interp.needed_functors
        for rule in self.order:
            if rule.is_fallback:
                continue
            if needed is not None and rule.head_functor not in needed:
                continue  # targeted evaluation: this output is not queried
            if engine.apply_rule(rule):
                continue
            self._apply_rule_with_shadowing(rule, engine.slow_candidates(rule))

    def apply_fallbacks(self) -> None:
        """Fallback (empty-head) rules over the inputs no other rule
        converted, recording what they match; with ``runtime_typing``,
        raise for inputs that not even a fallback rule matched."""
        leftovers = self._leftover_inputs()
        if not leftovers:
            return
        for rule in self.order:
            if not rule.is_fallback:
                continue
            candidates = self._candidates(rule, leftovers)
            if not candidates:
                continue
            bindings = self.interp.rule_bindings(
                rule, candidates, self.match_ctx, self.warnings, self.metrics
            )
            # A fallback match *handles* the input (the paper's Rule
            # Exception): account it as converted.
            for binding in bindings:
                for bp in rule.root_body_patterns():
                    value = binding.get(bp.name.name)
                    if isinstance(value, Tree):
                        self.matched_inputs.add(id(value))
                        self.matched_values.add(value)
        if self.interp.runtime_typing:
            unhandled = [t for t in leftovers if not self._converted(t)]
            if unhandled:
                raise UnconvertedDataError(
                    f"{len(unhandled)} input tree(s) matched by no rule "
                    f"(not even a fallback rule; first: "
                    f"{str(unhandled[0])[:80]!r})"
                )

    def _converted(self, node: Tree) -> bool:
        return id(node) in self.matched_inputs or node in self.matched_values

    def _leftover_inputs(self) -> List[Tree]:
        """The inputs no rule converted so far, in store order."""
        if self.arena_engine is not None:
            return self.arena_engine.unconverted_inputs()
        return [t for t in self.inputs if not self._converted(t)]

    def _candidates(self, rule: Rule, inputs: List[Tree]) -> Sequence[Tree]:
        """The inputs *rule* could match, per the dispatch index (all of
        them when indexing is off or the rule is unindexed)."""
        dispatch = self.interp.dispatch
        if dispatch is None:
            return inputs
        # The entry retains the inputs list so its id() stays allocated
        # for as long as the cache references it (id reuse would
        # otherwise alias a dead batch list to a fresh one).
        entry = self._candidate_caches.get(id(inputs))
        if entry is None or entry[0] is not inputs:
            entry = (inputs, {})
            self._candidate_caches[id(inputs)] = entry
        return dispatch.candidates(rule, inputs, entry[1], self.dispatch_stats)

    def _apply_rule_with_shadowing(self, rule: Rule, inputs: List[Tree]) -> None:
        roots = rule.root_body_patterns()
        single_root = roots[0].name.name if len(roots) == 1 else None
        candidates = self._candidates(rule, inputs)
        if not candidates:
            return
        bindings = self.interp.rule_bindings(
            rule, candidates, self.match_ctx, self.warnings, self.metrics
        )
        if not bindings:
            return
        if single_root is not None:
            kept: List[Binding] = []
            for binding in bindings:
                root_tree = binding.get(single_root)
                key = id(root_tree)
                names = self._matched_by.setdefault(key, set())
                if self.interp.hierarchy.shadowed(rule, names):
                    continue
                kept.append(binding)
            if not kept:
                return
            for binding in kept:
                root_tree = binding.get(single_root)
                self._matched_by.setdefault(id(root_tree), set()).add(rule.name)
                self.matched_inputs.add(id(root_tree))
                if isinstance(root_tree, Tree):
                    self.matched_values.add(root_tree)
            bindings = kept
        else:
            for binding in bindings:
                for bp in roots:
                    root_tree = binding.get(bp.name.name)
                    if root_tree is not None:
                        self.matched_inputs.add(id(root_tree))
                        if isinstance(root_tree, Tree):
                            self.matched_values.add(root_tree)
        self._construct_outputs(rule, bindings)

    # -- phases 4-5 -------------------------------------------------------------

    def _construct_outputs(self, rule: Rule, bindings: List[Binding]) -> None:
        if rule.head is None:
            return
        head = rule.head
        groups: Dict[str, List[Binding]] = {}
        order: List[str] = []
        for binding in bindings:
            try:
                identifier = self.constructor.skolem_id(head.term, binding, False)
            except Unbound:
                continue  # missing Skolem argument: no output for it
            if identifier not in groups:
                groups[identifier] = []
                order.append(identifier)
            groups[identifier].append(binding)
        root_names = [bp.name.name for bp in rule.root_body_patterns()]
        metrics = self.metrics
        metrics.counter(M_CONSTRUCT_GROUPS).inc(len(order), rule=rule.name)
        built = skipped = 0
        with span("yatl.phase.construct", rule=rule.name, groups=len(order)):
            for identifier in order:
                group = groups[identifier]
                origins = self._origins_of(group, root_names)
                self.provenance.setdefault(identifier, set()).update(origins)
                previous_origins = self._active_origins
                self._active_origins = self.provenance[identifier]
                try:
                    value = self.constructor.construct(head.tree, group)
                except Unbound as unbound:
                    self.warnings.append(
                        f"rule {rule.name!r}: output {identifier} skipped "
                        f"(unbound {unbound.name})"
                    )
                    skipped += 1
                    continue
                finally:
                    self._active_origins = previous_origins
                if isinstance(value, Ref):
                    self.root_refs[identifier] = value
                else:
                    self.skolems.associate(identifier, value)
                built += 1
                self.pending_ref.pop(identifier, None)
                self.pending_deref.pop(identifier, None)
                if self.prov is not None:
                    self.prov_firings += 1
                    if self.prov.record_firing(
                        identifier,
                        rule.name,
                        inputs=origins,
                        program=self.interp.program_name,
                        skolem=lambda i=identifier: self.skolems.term_text(i),
                    ):
                        self.prov_records += 1
        if built:
            metrics.counter(M_RULE_OUTPUTS).inc(built, rule=rule.name)
        if skipped:
            metrics.counter(M_CONSTRUCT_SKIPPED).inc(skipped, rule=rule.name)

    def _origins_of(self, group: List[Binding], root_names: List[str]) -> Set[str]:
        """Input-tree names contributing to one Skolem group: top-level
        root matches, plus (for demand-driven applications) the origins
        of the demanding output."""
        origins: Set[str] = set(self._active_origins)
        for binding in group:
            for name in root_names:
                value = binding.get(name)
                input_name = self._input_names.get(id(value))
                if input_name is not None:
                    origins.add(input_name)
        return origins

    # -- demand-driven evaluation -------------------------------------------------

    def demand_loop(self) -> None:
        """Evaluate pending dereferenced Skolems on their subtree
        arguments until quiescence (safe recursion, Section 3.4)."""
        by_functor: Dict[str, List[Rule]] = {}
        for rule in self.order:
            if rule.head is not None:
                by_functor.setdefault(rule.head.term.functor, []).append(rule)
        iterations = 0
        rounds = 0
        while True:
            pending = [
                i
                for i in self.pending_deref
                if not self.skolems.has_value(i) and i not in self.root_refs
            ]
            if not pending:
                break
            rounds += 1
            progressed = False
            with span("yatl.demand.round", round=rounds, pending=len(pending)):
                for identifier in pending:
                    iterations += 1
                    if iterations > self.interp.max_demand_iterations:
                        raise CyclicProgramError(
                            "demand-driven evaluation did not converge "
                            f"(> {self.interp.max_demand_iterations} steps): "
                            "the program is likely cyclic"
                        )
                    if self._demand(identifier, by_functor):
                        progressed = True
            if not progressed:
                break
        if iterations:
            self.metrics.counter(M_DEMAND_ITERATIONS).inc(iterations)
            self.metrics.counter(M_DEMAND_ROUNDS).inc(rounds)

    def _demand(self, identifier: str, by_functor: Dict[str, List[Rule]]) -> bool:
        functor, args = self.skolems.key_of(identifier)
        defining = by_functor.get(functor, ())
        if not defining:
            return False
        subject: Optional[Union[Tree, Ref]] = None
        for arg in args:
            if isinstance(arg, (Tree, Ref)):
                subject = arg
                break
        if subject is None:
            return False
        progressed = False
        # `applied` and `matched` both key on the subject's structural
        # identity: Skolem terms are value-keyed, so equal subjects
        # produce identical outputs, and the shadowing state must be
        # shared too — a general rule stays shadowed once a more
        # specific rule matched this subject, including on later
        # iterations for a still-pending identifier.
        matched = self.demand_matched.setdefault(subject, set())
        dispatch = self.interp.dispatch
        for rule in defining:
            key = (rule.name, subject)
            if key in self.applied:
                continue
            if self.interp.hierarchy.shadowed(rule, matched):
                continue
            if dispatch is not None and not dispatch.admits(
                rule, subject, self.dispatch_stats
            ):
                self.applied.add(key)  # can never match: remember the rejection
                continue
            self.applied.add(key)
            bindings = self.interp.rule_bindings(
                rule, [subject], self.match_ctx, self.warnings, self.metrics
            )
            if not bindings:
                continue
            matched.add(rule.name)
            self._construct_outputs(rule, bindings)
            progressed = True
        return progressed

    # -- final splicing ----------------------------------------------------------

    def finish(self) -> ConversionResult:
        resolved: Dict[str, Tree] = {}
        in_progress: Set[str] = set()

        def value_of(identifier: str, via_deref: bool) -> Tree:
            if identifier in resolved:
                return resolved[identifier]
            if identifier in in_progress:
                raise CyclicProgramError(
                    f"cyclic dereferencing detected while splicing {identifier!r}"
                )
            raw = self.skolems.value(identifier)
            if raw is None:
                alias = self.root_refs.get(identifier)
                if alias is not None:
                    if is_deref_placeholder(alias):
                        return value_of(deref_target(alias), True)
                    return value_of(alias.target, False)
                raise DanglingReferenceError(
                    f"no value was associated to {identifier!r} "
                    f"({_term_text(self.skolems, identifier)})"
                )
            if identifier in self.ref_free_ids:
                # Reference-free by construction: splicing would walk
                # the tree only to return it unchanged.
                resolved[identifier] = raw
                return raw
            in_progress.add(identifier)
            try:
                spliced = splice(raw)
            finally:
                in_progress.discard(identifier)
            resolved[identifier] = spliced
            return spliced

        def splice(node: Tree) -> Tree:
            def replace(ref: Ref):
                if is_deref_placeholder(ref):
                    return value_of(deref_target(ref), True)
                return ref

            return node.map_refs(replace)

        output = DataStore()
        with span("yatl.splice"):
            for identifier in self.skolems.ids():
                if not self.skolems.has_value(identifier) and identifier not in self.root_refs:
                    continue
                try:
                    output.add(identifier, value_of(identifier, False))
                except DanglingReferenceError:
                    raise
        # Dangling plain references (known reference-free outputs skip
        # the walk; mirrors DataStore.dangling_references exactly).
        ref_free = self.ref_free_ids
        dangling = sorted(
            {
                ref.target
                for name, node in output
                if name not in ref_free
                for ref in node.references()
                if ref.target not in output
            }
        )
        if dangling:
            message = f"dangling reference(s) in output: {', '.join(dangling)}"
            if self.interp.strict_refs:
                raise DanglingReferenceError(message)
            self.warnings.append(message)
        unconverted = self._leftover_inputs()
        # The name-level origins live in the run's ProvenanceStore
        # (explicit/ambient when installed, a fresh result-local one
        # otherwise) so result.lineage() reads one source of truth and
        # per-firing records — when recorded — share it.
        prov = self.prov if self.prov is not None else ProvenanceStore()
        for identifier, origins in self.provenance.items():
            if identifier in output:
                prov.add_origins(identifier, origins)
        self._flush_metrics(output, unconverted)
        return ConversionResult(
            output, self.skolems, unconverted, self.warnings, prov,
            metrics=self.metrics,
        )

    def _flush_metrics(self, output: DataStore, unconverted: List[Tree]) -> None:
        """Flush the hot-path accumulators (dispatch stats, memo hit
        counts, Skolem stats) into the registry, once per run."""
        m = self.metrics
        m.counter(M_INPUT_TREES).inc(self.n_inputs)
        m.counter(M_INPUT_CONVERTED).inc(self.n_inputs - len(unconverted))
        m.counter(M_INPUT_UNCONVERTED).inc(len(unconverted))
        m.counter(M_OUTPUT_TREES).inc(len(output))
        m.counter(M_WARNINGS).inc(len(self.warnings))
        ds = self.dispatch_stats
        m.counter(M_DISPATCH_INDEXED).inc(ds.indexed_calls)
        m.counter(M_DISPATCH_UNINDEXED).inc(ds.unindexed_calls)
        m.counter(M_DISPATCH_CONSIDERED).inc(ds.subjects_considered)
        m.counter(M_DISPATCH_ADMITTED).inc(ds.subjects_admitted)
        m.counter(M_DISPATCH_ADMIT_CHECKS).inc(ds.admit_checks)
        m.counter(M_DISPATCH_ADMIT_REJECTIONS).inc(ds.admit_rejections)
        # Ratios are whole-registry gauges: recomputed from the counter
        # totals so shared registries aggregate correctly across runs.
        calls = m.value(M_DISPATCH_INDEXED) + m.value(M_DISPATCH_UNINDEXED)
        if calls:
            m.gauge(M_DISPATCH_HIT_RATIO).set(m.value(M_DISPATCH_INDEXED) / calls)
        considered = m.value(M_DISPATCH_CONSIDERED)
        if considered:
            m.gauge(M_DISPATCH_REDUCTION).set(
                1.0 - m.value(M_DISPATCH_ADMITTED) / considered
            )
        m.counter(M_SKOLEM_FRESH).inc(self.skolems.fresh_ids)
        m.counter(M_SKOLEM_REUSED).inc(self.skolems.reused_ids)
        m.gauge(M_SKOLEM_SIZE).set(len(self.skolems))
        m.counter(M_MATCH_COVERAGE_MEMO_HITS).inc(self.match_ctx.coverage_memo_hits)
        if self.prov_firings:
            m.counter(M_PROVENANCE_FIRINGS).inc(self.prov_firings)
        if self.prov_records:
            m.counter(M_PROVENANCE_RECORDS).inc(self.prov_records)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

_MISSING = object()


def _as_store(
    data: Union[DataStore, Sequence[Tree], Tree], use_arena: bool = True
) -> DataStore:
    if isinstance(data, ArenaStore):
        # The ForestView seam: an arena input engages the batch path
        # unless the ablation flag turns it off, in which case it is
        # materialized up front and runs the plain tree path.
        return data if use_arena else data.to_data_store()
    if isinstance(data, DataStore):
        return data
    if isinstance(data, Tree):
        data = [data]
    store = DataStore()
    for index, node in enumerate(data, start=1):
        store.add(f"in{index}", node)
    return store


def _argument_values(call: FunctionCall, binding: Binding) -> Optional[List[Value]]:
    values: List[Value] = []
    for arg in call.args:
        if isinstance(arg, (Var, PatternVar)):
            if arg not in binding:
                return None
            values.append(binding[arg])
        else:
            values.append(arg)
    return values


def _expr_value(expr: Expr, binding: Binding):
    if isinstance(expr, (Var, PatternVar)):
        if expr not in binding:
            return _MISSING
        return binding[expr]
    return expr


def _term_text(skolems: SkolemTable, identifier: str) -> str:
    functor, args = skolems.key_of(identifier)
    return f"{functor}/{len(args)}"
