"""YATL programs: rule sets with models, functions, and operations.

A :class:`Program` bundles rules with an optional declared input/output
model and a function registry, and exposes the paper's program-level
operations: evaluation (Section 3.1), static validation (Section 3.4),
signature inference and model checks (Section 3.5), customization by
instantiation (Section 4.1), combination (Section 4.2) and composition
(Section 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.models import Model
from ..core.patterns import PChild, Pattern
from ..core.trees import DataStore, Tree
from ..errors import EvaluationError
from .ast import Rule
from .cycles import CycleReport, analyze_cycles, check_cycles
from .functions import FunctionRegistry, standard_registry
from .hierarchy import Hierarchy
from .interpreter import ConversionResult, Interpreter
from .typing import (
    Signature,
    check_input_against,
    check_output_against,
    infer_signature,
)


class Program:
    """A YATL conversion program."""

    def __init__(
        self,
        name: str,
        rules: Sequence[Rule] = (),
        registry: Optional[FunctionRegistry] = None,
        input_model: Optional[Model] = None,
        output_model: Optional[Model] = None,
    ) -> None:
        self.name = name
        self.rules: List[Rule] = []
        self.registry = registry or standard_registry()
        self.input_model = input_model
        self.output_model = output_model
        self.enforced_order: List[Tuple[str, str]] = []
        for rule in rules:
            self.add_rule(rule)

    # -- rule management ------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        if any(existing.name == rule.name for existing in self.rules):
            raise EvaluationError(
                f"program {self.name!r} already has a rule named {rule.name!r}"
            )
        self.rules.append(rule)

    def rule(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise EvaluationError(f"program {self.name!r} has no rule {name!r}")

    def remove_rule(self, name: str) -> Rule:
        rule = self.rule(name)
        self.rules.remove(rule)
        return rule

    def replace_rule(self, name: str, replacement: Rule) -> None:
        """Swap a rule for a customized version (Section 4.1 workflow)."""
        index = self.rules.index(self.rule(name))
        self.rules[index] = replacement

    def enforce_order(self, specific: str, general: str) -> None:
        """Force *specific* to be tried before *general* in the rule
        hierarchy — "of course, in this case, the declarativity of YATL
        programs is transgressed" (Section 4.2)."""
        self.rule(specific)
        self.rule(general)
        self.enforced_order.append((specific, general))

    def rule_names(self) -> List[str]:
        return [rule.name for rule in self.rules]

    # -- static analysis --------------------------------------------------------

    def hierarchy(self) -> Hierarchy:
        return Hierarchy(
            self.rules, model=self._context_model(), enforced=self.enforced_order
        )

    def analyze_cycles(self) -> CycleReport:
        return analyze_cycles(self.rules)

    def validate(self) -> CycleReport:
        """Reject potentially cyclic, non-safe-recursive programs."""
        return check_cycles(self.rules)

    def signature(self) -> Signature:
        """Infer the program signature ``M_IN |-> M_OUT`` (Section 3.5)."""
        return infer_signature(self.rules, self.registry, name=self.name)

    def check_models(self) -> None:
        """Check the inferred signature against the declared models."""
        signature = self.signature()
        if self.input_model is not None:
            check_input_against(signature, self.input_model)
        if self.output_model is not None:
            check_output_against(signature, self.output_model)

    def _context_model(self) -> Optional[Model]:
        if self.input_model is None:
            return self.output_model
        if self.output_model is None:
            return self.input_model
        return self.input_model.merged_with(
            self.output_model, name=f"ctx({self.name})"
        )

    # -- evaluation ----------------------------------------------------------------

    def run(
        self,
        data: Union[DataStore, Sequence[Tree], Tree],
        runtime_typing: bool = False,
        strict_refs: bool = False,
        validate: bool = True,
        target_functors: Optional[Sequence[str]] = None,
        use_dispatch_index: bool = True,
        use_arena: bool = True,
        parallel_safe_batches: Optional[int] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        executor=None,
        provenance=None,
    ) -> ConversionResult:
        """Convert *data*, returning the output store.

        With ``validate`` (default) the Section 3.4 cycle check runs
        first; ``runtime_typing`` enables the Section 3.5 run-time
        check for unconverted inputs. ``target_functors`` restricts
        evaluation to the outputs a query needs (and their transitive
        Skolem dependencies) — the paper's future-work direction of
        querying the target without materializing all of it.
        ``use_dispatch_index`` (default) pre-filters rule candidates by
        root signature; disable it for ablation measurements.
        ``use_arena`` (default) evaluates
        :class:`~repro.core.arena.ArenaStore` inputs on the columnar
        batch path; disable it (the ``--no-arena`` ablation) to
        materialize the arena up front and run the tree path.
        ``workers``/``chunk_size``/``executor`` evaluate the top-level
        forest with the multi-process executor of :mod:`repro.parallel`
        (``workers=N`` output is byte-identical to ``workers=1``; see
        :class:`Interpreter` and docs/PERFORMANCE.md).
        ``parallel_safe_batches`` is deprecated — it maps onto the
        sharded executor with that many chunks and ``workers=1``.
        ``provenance`` installs a :class:`~repro.obs.ProvenanceStore`
        recording per-firing lineage (defaults to the ambient store
        from :func:`repro.obs.tracing`, if one is installed).
        """
        if validate:
            self.validate()
        interpreter = Interpreter(
            self.rules,
            registry=self.registry,
            model=self._context_model(),
            hierarchy=self.hierarchy(),
            runtime_typing=runtime_typing,
            strict_refs=strict_refs,
            target_functors=target_functors,
            use_dispatch_index=use_dispatch_index,
            use_arena=use_arena,
            parallel_safe_batches=parallel_safe_batches,
            workers=workers,
            chunk_size=chunk_size,
            executor=executor,
            provenance=provenance,
            program_name=self.name,
        )
        return interpreter.run(data)

    def evaluate(
        self,
        data: Union[DataStore, Sequence[Tree], Tree],
        **options,
    ) -> ConversionResult:
        """Alias of :meth:`run` — the evaluation entry point's name in
        the paper's terminology (``Program.evaluate(workers=N)`` is the
        parallel executor's documented surface)."""
        return self.run(data, **options)

    def query(
        self,
        data: Union[DataStore, Sequence[Tree], Tree],
        functor: str,
    ) -> List[Tree]:
        """Convenience wrapper over targeted evaluation: the output
        trees of one Skolem functor, computing only what they need."""
        result = self.run(data, target_functors=[functor])
        return result.trees_of(functor)

    # -- program operations ----------------------------------------------------------

    def combined_with(self, other: "Program", name: Optional[str] = None) -> "Program":
        """Combination (Section 4.2): the union of two rule sets, with
        conflicts handled by the automatically rebuilt hierarchy."""
        combined = Program(
            name or f"{self.name}+{other.name}",
            registry=_merge_registries(self.registry, other.registry),
            input_model=_merge_models(self.input_model, other.input_model),
            output_model=_merge_models(self.output_model, other.output_model),
        )
        for rule in self.rules:
            combined.add_rule(rule)
        for rule in other.rules:
            if any(existing.name == rule.name for existing in combined.rules):
                if rule == self.rule(rule.name):
                    continue  # identical rule: keep one copy
                raise EvaluationError(
                    f"cannot combine: both programs define a different rule "
                    f"named {rule.name!r}"
                )
            combined.add_rule(rule)
        combined.enforced_order = list(self.enforced_order) + list(
            other.enforced_order
        )
        return combined

    def instantiated_on(
        self,
        patterns: Union[Pattern, Sequence[Pattern], Model],
        name: Optional[str] = None,
    ) -> "Program":
        """Customization by instantiation (Section 4.1): derive the more
        specific program this program becomes on the given pattern(s)."""
        from .customize import instantiate_program  # cycle: customize uses Program

        return instantiate_program(self, patterns, name=name)

    def composed_with(self, other: "Program", name: Optional[str] = None) -> "Program":
        """Composition (Section 4.3): a one-step program equivalent to
        running ``self`` then ``other``, without intermediate patterns."""
        from .compose import compose_programs  # cycle: compose uses Program

        return compose_programs(self, other, name=name)

    # -- dunder -------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, rules=[{', '.join(self.rule_names())}])"

    def __str__(self) -> str:
        from .printer import render_program

        return render_program(self)


def _merge_registries(
    first: FunctionRegistry, second: FunctionRegistry
) -> FunctionRegistry:
    if first is second:
        return first
    merged = FunctionRegistry()
    for name in second.names():
        merged.register(name, second.get(name).fn, second.get(name).arg_domains,
                        second.get(name).result_domain)
    for name in first.names():
        fn = first.get(name)
        merged.register(name, fn.fn, fn.arg_domains, fn.result_domain)
    return merged


def _merge_models(first: Optional[Model], second: Optional[Model]) -> Optional[Model]:
    if first is None:
        return second
    if second is None:
        return first
    if first is second or first == second:
        return first
    return first.merged_with(second)
