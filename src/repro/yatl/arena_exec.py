"""Batch rule evaluation over the columnar arena.

The tree path evaluates one ``(rule, subject)`` pair at a time,
pointer-chasing :class:`~repro.core.trees.Tree` objects.  This module is
its columnar counterpart for :class:`~repro.core.arena.ArenaStore`
inputs: dispatch becomes a label-column bucket lookup producing
candidate *root indices*, root-pattern matching runs as flat comparisons
over the ``labels``/``n_children`` columns, and head construction
replays the grouping semantics of :mod:`repro.yatl.construction` over
plain value tuples.  Rules the compiler cannot express as a flat op
program fall back to the existing matcher over materialized candidates
(and only those candidates are ever decoded into trees).

Everything here is replicated from the tree path *exactly* — candidate
order, binding deduplication (Python ``==``, so ``1``/``True``/``1.0``
conflate), hierarchy shadowing, Skolem grouping, provenance and the
per-rule metrics — so a run over an :class:`ArenaStore` stays
byte-identical to the same run over the equivalent
:class:`~repro.core.trees.DataStore`.
"""

from __future__ import annotations

import time
from operator import itemgetter
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.arena import K_REF, ArenaStore, label_alias_ids
from ..core.labels import label_sort_key
from ..core.patterns import (
    GROUP,
    INDEX,
    ONE,
    ORDER,
    STAR,
    NameTerm,
    PChild,
    PNode,
    PVarLeaf,
    collect_variables,
)
from ..core.trees import Tree
from ..core.variables import AnyDomain, PatternVar, Var
from ..errors import NonDeterminismError
from ..obs import span
from ..obs.metrics import TIME_BUCKETS
from .ast import Rule

_MISSING = object()

# Flat matcher opcodes. ``rel`` is the node's preorder offset relative
# to the candidate root: with every arity pinned by the pattern (all
# edges are ONE), each pattern node sits at a *fixed* relative offset,
# so one pass of integer comparisons replaces the recursive matcher.
OP_FIX = 0  # (OP_FIX, rel, label_id, n_children): exact label + arity
OP_FIXM = 1  # (OP_FIXM, rel, ids, n_children): label in ids (1 == True == 1.0)
OP_VAR = 2  # (OP_VAR, rel, slot, domain): leaf label binds a variable


class FastRule:
    """One rule compiled to a flat op program plus a head builder."""

    __slots__ = (
        "rule",
        "name",
        "root_ids",
        "root_arity",
        "ops",
        "size",
        "n_slots",
        "head_term",
        "functor",
        "skolem_args",
        "build",
    )

    def __init__(self, rule, root_ids, root_arity, ops, size, n_slots,
                 skolem_parts, build):
        self.rule = rule
        self.name = rule.name
        self.root_ids = root_ids
        self.root_arity = root_arity
        self.ops = ops
        self.size = size
        self.n_slots = n_slots
        self.head_term = rule.head.term
        self.functor = rule.head.term.functor
        self.skolem_args = _compile_skolem_args(skolem_parts)
        self.build = build

    def match_block(self, labels, kinds, n_children, values_by_id, base):
        """Match the op program against the subtree at *base*; the slot
        value tuple on success, None on the first failing comparison.
        ``values_by_id`` is the intern table's raw id -> value list.

        Positions are trusted inductively: every op validates its own
        node's arity before any later op relies on an offset computed
        from it, so a mismatching subject fails before an out-of-shape
        read can happen.
        """
        values: Optional[List[object]] = None
        for op in self.ops:
            code = op[0]
            pos = base + op[1]
            if code == OP_FIX:
                if labels[pos] != op[2] or n_children[pos] != op[3]:
                    return None
            elif code == OP_FIXM:
                if labels[pos] not in op[2] or n_children[pos] != op[3]:
                    return None
            else:  # OP_VAR
                if kinds[pos] == K_REF or n_children[pos] != 0:
                    return None
                value = values_by_id[labels[pos]]
                domain = op[3]
                if domain is not None and not domain.contains(value):
                    return None
                if values is None:
                    values = [_MISSING] * self.n_slots
                slot = op[2]
                current = values[slot]
                if current is _MISSING:
                    values[slot] = value
                elif current != value:
                    return None  # repeated variable: Binding.bind conflict
        if values is None:
            return ()
        return tuple(values)


def _compile_skolem_args(parts):
    """Specialize ``values -> Skolem argument tuple`` for the common
    all-slots shape (``itemgetter`` with two or more slots already
    returns the tuple directly)."""
    if not parts:
        return lambda values: ()
    if all(is_slot for is_slot, _ in parts):
        if len(parts) == 1:
            index = parts[0][1]
            return lambda values: (values[index],)
        return itemgetter(*(payload for _, payload in parts))

    def skolem_args(values):
        return tuple(
            values[payload] if is_slot else payload
            for is_slot, payload in parts
        )

    return skolem_args


# ---------------------------------------------------------------------------
# Body compilation
# ---------------------------------------------------------------------------


def _compile_body_tree(tree, intern, slots):
    """Compile a body pattern tree to ``(ops, size)``, or None when it
    needs the general matcher (non-ONE edges, reference or pattern-name
    leaves, pattern variables, variable labels on interior nodes)."""
    ops: List[tuple] = []

    def comp(node, rel):
        if not isinstance(node, PNode):
            return None
        label = node.label
        if isinstance(label, Var):
            if node.edges:
                return None
            slot = slots.get(label.name)
            if slot is None:
                slot = slots[label.name] = len(slots)
            domain = None if isinstance(label.domain, AnyDomain) else label.domain
            ops.append((OP_VAR, rel, slot, domain))
            return 1
        for edge in node.edges:
            if edge.kind != ONE:
                return None
        ids = label_alias_ids(intern, label)
        if len(ids) == 1:
            ops.append((OP_FIX, rel, next(iter(ids)), len(node.edges)))
        else:
            ops.append((OP_FIXM, rel, ids, len(node.edges)))
        size = 1
        for edge in node.edges:
            sub = comp(edge.target, rel + size)
            if sub is None:
                return None
            size += sub
        return size

    size = comp(tree, 0)
    if size is None:
        return None
    return ops, size


# ---------------------------------------------------------------------------
# Head compilation
# ---------------------------------------------------------------------------


def _agree(rows, slot, what):
    """All rows of one Skolem group must agree on the slot — the exact
    agreement (and error message) of ``Constructor._agreed``."""
    first = rows[0][slot]
    if len(rows) == 1:
        return first
    for row in rows:
        value = row[slot]
        if value != first:
            raise NonDeterminismError(
                what,
                f"non-deterministic program: {what} takes two distinct "
                f"values ({first!r} and {value!r}) in one Skolem group",
            )
    return first


def _compile_head_tree(node, slots, intern):
    """Compile a head pattern tree to ``build(rows) -> Tree`` over slot
    value tuples, or None when construction needs bindings (pattern
    variables, Skolem leaves, references)."""
    compiled = _comp_head(node, slots, intern)
    if compiled is None:
        return None
    return compiled[0]


def _edge_children(edges, rows):
    """Child tuple for a mixed-edge node: constant edges reuse their
    prebuilt children, ONE edges contribute one node, grouped edges a
    list each."""
    children: List[Tree] = []
    for kind, build, const in edges:
        if const is not None:
            children.extend(const)
        elif kind == ONE:
            children.append(build(rows))
        else:
            children.extend(build(rows))
    return tuple(children)


def _comp_head(node, slots, intern):
    """Compile one head node to ``(build, const)`` where *const* is the
    shared result Tree when the subtree is fully ground (no slots), or
    None when construction needs bindings."""
    if not isinstance(node, PNode):
        return None
    label = node.label
    if isinstance(label, Var):
        slot = slots.get(label.name)
        if slot is None:
            return None
        what = f"variable {label.name}"
        if not node.edges:
            leaf_for = intern.leaf_for

            def build_leaf(rows):
                if len(rows) == 1:
                    return leaf_for(rows[0][slot])
                return leaf_for(_agree(rows, slot, what))

            return build_leaf, None
        edges = _comp_head_edges(node.edges, slots, intern)
        if edges is None:
            return None

        def build_var(rows):
            return Tree._make(
                _agree(rows, slot, what), _edge_children(edges, rows)
            )

        return build_var, None
    if not node.edges:
        leaf = Tree(label)
        return (lambda rows: leaf), leaf
    if len(node.edges) == 1 and node.edges[0].kind == ONE:
        # Fixed-label wrapper around one variable leaf — the
        # relational-attribute idiom (``-> id -> Id``) — fused into a
        # single frame instead of a wrapper + leaf builder pair.
        target = node.edges[0].target
        if (
            isinstance(target, PNode)
            and isinstance(target.label, Var)
            and not target.edges
        ):
            slot = slots.get(target.label.name)
            if slot is not None:
                what = f"variable {target.label.name}"
                leaf_for = intern.leaf_for

                def build_wrap(rows):
                    if len(rows) == 1:
                        return Tree._make(label, (leaf_for(rows[0][slot]),))
                    return Tree._make(
                        label, (leaf_for(_agree(rows, slot, what)),)
                    )

                return build_wrap, None
    edges = _comp_head_edges(node.edges, slots, intern)
    if edges is None:
        return None
    if all(const is not None for _kind, _build, const in edges):
        # Fully ground subtree: built once at compile time and shared
        # across every output (trees are immutable).
        shared = Tree(
            label, [child for _k, _b, const in edges for child in const]
        )
        return (lambda rows: shared), shared
    if all(kind == ONE for kind, _build, _const in edges):
        # All-ONE interior node: children built positionally, no
        # per-edge list hops; common arities unrolled (no genexpr).
        targets = [
            (lambda rows, c=const[0]: c) if const is not None else build
            for _kind, build, const in edges
        ]
        if len(targets) == 1:
            (t0,) = targets

            def build_ones(rows):
                return Tree._make(label, (t0(rows),))

        elif len(targets) == 2:
            t0, t1 = targets

            def build_ones(rows):
                return Tree._make(label, (t0(rows), t1(rows)))

        elif len(targets) == 3:
            t0, t1, t2 = targets

            def build_ones(rows):
                return Tree._make(label, (t0(rows), t1(rows), t2(rows)))

        else:

            def build_ones(rows):
                return Tree._make(label, tuple(t(rows) for t in targets))

        return build_ones, None

    def build_mixed(rows):
        return Tree._make(label, _edge_children(edges, rows))

    return build_mixed, None


def _comp_head_edges(edges, slots, intern):
    compiled = []
    for edge in edges:
        entry = _comp_head_edge(edge, slots, intern)
        if entry is None:
            return None
        compiled.append(entry)
    return compiled


def _comp_head_edge(edge, slots, intern):
    """Compile one head edge to ``(kind, build, const_children)``: ONE
    builders return the single child node, grouped builders the child
    list; *const_children* is the prebuilt tuple when the target is
    fully ground under a ONE edge."""
    compiled = _comp_head(edge.target, slots, intern)
    if compiled is None:
        return None
    target, const = compiled
    if edge.kind == ONE:
        return ONE, target, ((const,) if const is not None else None)
    if edge.kind == STAR:
        # Implicit grouping: one child per distinct projection of the
        # group onto the variables under the edge, first-encounter
        # order (Constructor._build_edge).
        names = sorted(var.name for var in collect_variables(edge.target))
        projection = [slots.get(name) for name in names]

        def build_star(rows):
            partitions: Dict[tuple, list] = {}
            order: List[tuple] = []
            for row in rows:
                key = tuple(
                    None if slot is None else row[slot] for slot in projection
                )
                part = partitions.get(key)
                if part is None:
                    partitions[key] = part = []
                    order.append(key)
                part.append(row)
            return [target(partitions[key]) for key in order]

        return STAR, build_star, None
    if edge.kind == GROUP:

        def build_group(rows):
            children = []
            seen = set()
            for row in rows:
                child = target([row])
                if child not in seen:
                    seen.add(child)
                    children.append(child)
            return children

        return GROUP, build_group, None
    # ORDER / INDEX: partition by the criteria, sort the partition keys.
    criteria = (
        [edge.index_var] if edge.kind == INDEX else list(edge.criteria)
    )
    projection = []
    for var in criteria:
        slot = slots.get(var.name)
        if slot is None:
            return None  # unbound criterion: leave to the tree path
        projection.append(slot)

    def build_order(rows):
        partitions: Dict[tuple, list] = {}
        order: List[tuple] = []
        for row in rows:
            key = tuple(row[slot] for slot in projection)
            part = partitions.get(key)
            if part is None:
                partitions[key] = part = []
                order.append(key)
            part.append(row)
        order.sort(key=lambda key: tuple(label_sort_key(v) for v in key))
        return [target(partitions[key]) for key in order]

    return edge.kind, build_order, None


def compile_fast_rule(rule: Rule, intern) -> Optional[FastRule]:
    """Compile *rule* for flat evaluation, or None when any part of it
    needs the general matcher/constructor (which stays authoritative)."""
    head = rule.head
    if head is None or rule.calls or rule.predicates:
        return None
    if len(rule.body) != 1:
        return None
    slots: Dict[str, int] = {}
    compiled = _compile_body_tree(rule.body[0].tree, intern, slots)
    if compiled is None:
        return None
    ops, size = compiled
    root_op = ops[0]
    if root_op[0] == OP_VAR:
        return None  # variable root label: no bucket to dispatch on
    root_ids = (
        frozenset((root_op[2],)) if root_op[0] == OP_FIX else root_op[2]
    )
    skolem_parts = []
    for arg in head.term.args:
        if isinstance(arg, Var):
            slot = slots.get(arg.name)
            if slot is None:
                return None
            skolem_parts.append((True, slot))
        elif isinstance(arg, PatternVar):
            return None  # tree-valued Skolem argument: needs the binding
        else:
            skolem_parts.append((False, arg))
    for var in collect_variables(head.tree):
        if isinstance(var, PatternVar) or var.name not in slots:
            return None
    build = _compile_head_tree(head.tree, slots, intern)
    if build is None:
        return None
    return FastRule(
        rule, root_ids, root_op[3], ops, size, len(slots), skolem_parts, build
    )


# ---------------------------------------------------------------------------
# The engine: per-run batch state over one ArenaStore
# ---------------------------------------------------------------------------


class ArenaEngine:
    """Batch evaluation state for one run over an :class:`ArenaStore`.

    Owns the per-root bookkeeping the tree path keys by ``id(tree)`` —
    here keyed by root *index*, with shared set objects installed into
    ``_RunState._matched_by`` at materialization time so the fast and
    slow paths see one hierarchy-shadowing state.
    """

    def __init__(self, state, store: ArenaStore) -> None:
        from . import interpreter as _interp  # deferred: interpreter imports us

        self._interp_mod = _interp
        self.state = state
        self.store = store
        self.arena = store.arena
        self.intern = store.arena.intern
        self._fast: Dict[str, object] = {}
        self._buckets: Optional[Dict[int, List[int]]] = None
        self.matched_by_index: Dict[int, Set[str]] = {}
        self.converted_indices: Set[int] = set()
        self.converted_keys: Set[tuple] = set()
        self._dedup_keys: Dict[int, tuple] = {}
        # id -> canonical id for value-equal intern entries (1 == True
        # == 1.0); None until the first dedup_key call scans the table.
        self._alias_remap: Optional[Dict[int, int]] = None

    # -- shared lookups -----------------------------------------------------

    def fast_for(self, rule: Rule) -> Optional[FastRule]:
        entry = self._fast.get(rule.name, _MISSING)
        if entry is _MISSING:
            entry = compile_fast_rule(rule, self.intern)
            self._fast[rule.name] = entry
        return entry  # type: ignore[return-value]

    def root_buckets(self) -> Dict[int, List[int]]:
        """Root indices bucketed by root label id — the label-column
        filter standing in for the per-subject dispatch loop. Built once
        per run with a sort + run-length pass over the roots."""
        if self._buckets is None:
            from ..core.arena import group_runs

            labels = self.arena.labels
            roots = self.arena.roots
            pairs = [(labels[roots[i]], i) for i in range(len(roots))]
            self._buckets = dict(group_runs(pairs))
        return self._buckets

    def matched_names(self, index: int) -> Set[str]:
        names = self.matched_by_index.get(index)
        if names is None:
            names = self.matched_by_index[index] = set()
        return names

    def materialize_root(self, index: int) -> Tree:
        """Decode one root (cached) and register it with the run state
        so the tree path sees it exactly like an eager input: name
        lookup for provenance, shared shadowing set."""
        store = self.store
        tree = store.tree_root(index)
        state = self.state
        tid = id(tree)
        if tid not in state._input_names:
            state._input_names[tid] = store.name_at(index)
            state._matched_by[tid] = self.matched_names(index)
        return tree

    def _aliases(self) -> Dict[int, int]:
        """id -> canonical id for value-equal intern entries, built in
        one scan at first use (identity entries omitted, so the common
        alias-free table yields an empty dict). Input columns only hold
        ids interned at encode time, so later table growth — rule
        compilation interning pattern aliases, output leaves — cannot
        introduce aliases between *root* labels after the scan."""
        remap = self._alias_remap
        if remap is None:
            remap = {}
            first_by_value: Dict[tuple, int] = {}
            intern = self.intern
            for ident in range(len(intern)):
                kind, value = intern.entry(ident)
                canonical = first_by_value.setdefault(
                    (kind == K_REF, value), ident
                )
                if canonical != ident:
                    remap[ident] = canonical
            self._alias_remap = remap
        return remap

    def dedup_key(self, index: int) -> tuple:
        """A structural key for the root equal iff the decoded trees are
        ``==`` — the arena stand-in for binding deduplication collapsing
        value-equal root subjects. Alias-free interns (no 1/1.0/True
        twins among the labels) use the raw column slices directly;
        otherwise labels are canonicalized through the alias remap."""
        key = self._dedup_keys.get(index)
        if key is None:
            remap = self._aliases()
            if not remap:
                key = self.store.root_key(index)
            else:
                start, end = self.store.root_block(index)
                labels = self.arena.labels
                key = (
                    tuple(remap.get(l, l) for l in labels[start:end]),
                    self.arena.n_children[start:end].tobytes(),
                )
            self._dedup_keys[index] = key
        return key

    # -- slow path ----------------------------------------------------------

    def slow_candidates(self, rule: Rule) -> List[Tree]:
        """Materialized candidate roots for a rule the compiler
        rejected, prefiltered by the rule's dispatch signature over the
        label/arity columns (only survivors are ever decoded)."""
        state = self.state
        store = self.store
        dispatch = state.interp.dispatch
        signature = dispatch.signature(rule) if dispatch is not None else None
        if signature is None:
            return [self.materialize_root(i) for i in range(len(store))]
        if signature.refs_only:
            return []  # store roots are always trees, never references
        arena = self.arena
        roots = arena.roots
        n_children = arena.n_children
        if signature.labels is not None:
            ids = signature.label_ids(self.intern)
            buckets = self.root_buckets()
            indices: List[int] = []
            for label_id in ids:
                indices.extend(buckets.get(label_id, ()))
            if len(ids) > 1:
                indices.sort()  # restore input order across buckets
        elif signature.domain is not None:
            value_of = self.intern.value
            domain = signature.domain
            admitted = {
                label_id
                for label_id in self.root_buckets()
                if domain.contains(value_of(label_id))
            }
            labels = arena.labels
            indices = [
                i for i in range(len(store)) if labels[roots[i]] in admitted
            ]
        else:
            indices = list(range(len(store)))
        if signature.unbounded:
            if signature.min_children:
                minimum = signature.min_children
                indices = [i for i in indices if n_children[roots[i]] >= minimum]
        else:
            exact = signature.min_children
            indices = [i for i in indices if n_children[roots[i]] == exact]
        return [self.materialize_root(i) for i in indices]

    def unconverted_inputs(self) -> List[Tree]:
        """The inputs no rule converted, in store order — checking the
        cheap index/value keys before falling back to materialization
        (fallback rules and the demand loop mark trees, not indices)."""
        state = self.state
        leftovers: List[Tree] = []
        for index in range(len(self.store)):
            if index in self.converted_indices:
                continue
            if self.dedup_key(index) in self.converted_keys:
                continue
            tree = self.materialize_root(index)
            if state._converted(tree):
                continue
            leftovers.append(tree)
        return leftovers

    # -- fast path ----------------------------------------------------------

    def apply_rule(self, rule: Rule) -> bool:
        """Run *rule* entirely on the arena when compilable; False means
        the caller must use the tree path. Mirrors
        ``_apply_rule_with_shadowing`` + ``_construct_outputs`` step for
        step (candidate stats, spans, metrics, shadowing, grouping,
        provenance) so outputs and bookkeeping stay identical."""
        fast = self.fast_for(rule)
        if fast is None:
            return False
        state = self.state
        stats = state.dispatch_stats
        stats.indexed_calls += 1
        stats.subjects_considered += len(self.store)
        candidates = self._admitted_candidates(fast)
        stats.subjects_admitted += len(candidates)
        if not candidates:
            return True
        rows = self._match_candidates(fast, candidates)
        if not rows:
            return True
        rows = self._shadow(rule, rows)
        if rows:
            self._construct_groups(fast, rows)
        return True

    def _admitted_candidates(self, fast: FastRule) -> List[int]:
        """The signature-admitted root indices (label bucket + exact
        arity, like ``RootSignature.admits`` on the tree path)."""
        buckets = self.root_buckets()
        if len(fast.root_ids) == 1:
            indices = buckets.get(next(iter(fast.root_ids)), [])
        else:
            indices = []
            for label_id in fast.root_ids:
                indices.extend(buckets.get(label_id, ()))
            indices.sort()
        arity = fast.root_arity
        roots = self.arena.roots
        n_children = self.arena.n_children
        return [i for i in indices if n_children[roots[i]] == arity]

    def _match_candidates(
        self, fast: FastRule, candidates: List[int]
    ) -> List[Tuple[int, tuple]]:
        """Phases 1-3 over the candidate offsets: flat matching plus
        binding deduplication, with the tree path's spans and metrics
        (a fast rule has no calls or predicates, so those phases only
        account the pass-through)."""
        state = self.state
        metrics = state.metrics
        rule_name = fast.name
        arena = self.arena
        with span("yatl.rule", rule=rule_name, candidates=len(candidates)):
            started = time.perf_counter()
            with span("yatl.phase.match", rule=rule_name):
                labels = arena.labels
                kinds = arena.kinds
                n_children = arena.n_children
                roots = arena.roots
                values_by_id = self.intern.raw_values()
                match = fast.match_block
                rows: List[Tuple[int, tuple]] = []
                seen: Set[tuple] = set()
                for index in candidates:
                    values = match(labels, kinds, n_children, values_by_id, roots[index])
                    if values is None:
                        continue
                    # The slot tuple IS the dedup key: a fast rule pins
                    # every fixed position up to Python ``==`` (exact id
                    # or alias set, arities exact), so two admitted
                    # subjects are ``==`` iff their slot tuples are —
                    # which is exactly the tree path's Binding dedup,
                    # where the subject tree itself is bound to the root
                    # pattern name and compared by value.
                    if values in seen:
                        continue
                    seen.add(values)
                    rows.append((index, values))
            metrics.counter(self._interp_mod.M_RULE_APPLICATIONS).inc(rule=rule_name)
            metrics.counter(self._interp_mod.M_RULE_MATCHED).inc(
                len(rows), rule=rule_name
            )
            if not rows:
                metrics.histogram(
                    self._interp_mod.M_RULE_SECONDS, buckets=TIME_BUCKETS
                ).observe(time.perf_counter() - started, rule=rule_name)
                return rows
            with span("yatl.phase.call", rule=rule_name):
                pass  # no calls: compile_fast_rule rejects rules with them
            with span("yatl.phase.predicate", rule=rule_name):
                pass  # no predicates either
            metrics.counter(self._interp_mod.M_RULE_AFTER_CALLS).inc(
                len(rows), rule=rule_name
            )
            metrics.counter(self._interp_mod.M_RULE_AFTER_PREDICATES).inc(
                len(rows), rule=rule_name
            )
            metrics.histogram(
                self._interp_mod.M_RULE_SECONDS, buckets=TIME_BUCKETS
            ).observe(time.perf_counter() - started, rule=rule_name)
        return rows

    def _shadow(
        self, rule: Rule, rows: List[Tuple[int, tuple]]
    ) -> List[Tuple[int, tuple]]:
        """Two-phase hierarchy shadowing, then mark the kept roots
        converted (index, structural key, and shared name set)."""
        hierarchy = self.state.interp.hierarchy
        matched_names = self.matched_names
        kept = [
            row
            for row in rows
            if not hierarchy.shadowed(rule, matched_names(row[0]))
        ]
        if not kept:
            return kept
        rule_name = rule.name
        for index, _ in kept:
            matched_names(index).add(rule_name)
            self.converted_indices.add(index)
            self.converted_keys.add(self.dedup_key(index))
        return kept

    def _construct_groups(
        self, fast: FastRule, rows: List[Tuple[int, tuple]]
    ) -> None:
        """Phases 4-5: Skolem grouping and head construction, first
        encounter order, with the tree path's provenance recording."""
        state = self.state
        skolems = state.skolems
        metrics = state.metrics
        rule_name = fast.name
        functor = fast.functor
        groups: Dict[str, Tuple[List[tuple], List[int]]] = {}
        order: List[str] = []
        id_for = skolems.id_for
        skolem_args = fast.skolem_args
        # ``_on_skolem(identifier, term, deref=False)`` inlined: the
        # origins update only fires under a non-empty ambient origin
        # set, which cannot change inside this loop.
        pending_ref = state.pending_ref
        active = state._active_origins
        provenance = state.provenance
        for index, values in rows:
            identifier = id_for(functor, skolem_args(values))
            pending_ref[identifier] = None
            if active:
                provenance.setdefault(identifier, set()).update(active)
            group = groups.get(identifier)
            if group is None:
                groups[identifier] = group = ([], [])
                order.append(identifier)
            group[0].append(values)
            group[1].append(index)
        metrics.counter(self._interp_mod.M_CONSTRUCT_GROUPS).inc(
            len(order), rule=rule_name
        )
        built = 0
        name_at = self.store.name_at
        build = fast.build
        ref_free_ids = state.ref_free_ids
        associate = skolems.associate
        pop_ref = pending_ref.pop
        pop_deref = state.pending_deref.pop
        prov = state.prov
        with span("yatl.phase.construct", rule=rule_name, groups=len(order)):
            for identifier in order:
                group_rows, group_indices = groups[identifier]
                if active:
                    origins = set(active)
                    for index in group_indices:
                        origins.add(name_at(index))
                else:
                    origins = {name_at(index) for index in group_indices}
                entry = provenance.get(identifier)
                if entry is None:
                    provenance[identifier] = entry = set(origins)
                else:
                    entry.update(origins)
                state._active_origins = entry
                try:
                    value = build(group_rows)
                finally:
                    state._active_origins = active
                associate(identifier, value)
                # Fast heads cannot contain reference leaves (the
                # compiler falls back on them): finish() may skip the
                # splice walk for these outputs.
                ref_free_ids.add(identifier)
                built += 1
                pop_ref(identifier, None)
                pop_deref(identifier, None)
                if prov is not None:
                    state.prov_firings += 1
                    if prov.record_firing(
                        identifier,
                        rule_name,
                        inputs=origins,
                        program=state.interp.program_name,
                        skolem=lambda i=identifier: skolems.term_text(i),
                    ):
                        state.prov_records += 1
        if built:
            metrics.counter(self._interp_mod.M_RULE_OUTPUTS).inc(
                built, rule=rule_name
            )
