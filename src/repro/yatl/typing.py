"""Typing in YATL (Section 3.5).

"Input and output models can easily be inferred by considering the
program (i) input and output patterns, (ii) predicate/function
signatures and (iii) variable domains."

The couple of inferred models is the program's **signature**
``M_IN |-> M_OUT``. It is used to check composition compatibility
(Section 4.3) and to verify that a program's input or output complies
with a more general model (e.g. that generated objects are ODMG
compliant). Typing is optional: programs run without it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.instantiation import model_is_instance
from ..core.labels import Label, atom_type_name, is_atom
from ..core.models import Model
from ..core.patterns import PChild, PNode, Pattern
from ..core.variables import (
    ANY,
    AnyDomain,
    Domain,
    PatternVar,
    Var,
    domain_by_name,
)
from ..errors import TypingError
from .ast import Expr, Rule
from .functions import FunctionRegistry


class Signature:
    """A program signature: the inferred input and output models."""

    def __init__(self, input_model: Model, output_model: Model) -> None:
        self.input_model = input_model
        self.output_model = output_model

    def __repr__(self) -> str:
        return (
            f"Signature({self.input_model.pattern_names()} |-> "
            f"{self.output_model.pattern_names()})"
        )


# ---------------------------------------------------------------------------
# Variable domain refinement
# ---------------------------------------------------------------------------


def _domain_of_constant(value: Label) -> Domain:
    if is_atom(value):
        return domain_by_name(atom_type_name(value))
    return ANY


def refine_domains(rule: Rule, registry: Optional[FunctionRegistry]) -> Dict[str, Domain]:
    """Per-variable domain restrictions implied by the rule's predicates
    and external function signatures.

    ``Year > 1975`` restricts ``Year`` to ``int``; ``C is city(Add)``
    restricts ``Add`` to the signature's argument domain and ``C`` to
    its result domain.
    """
    domains: Dict[str, Domain] = {}

    def restrict(expr: Expr, domain: Domain) -> None:
        if isinstance(domain, AnyDomain) or not isinstance(expr, Var):
            return
        existing = domains.get(expr.name)
        if existing is None or domain.subset_of(existing):
            domains[expr.name] = domain
        # Incompatible restrictions are kept as the first one; a full
        # intersection lattice is not needed for the paper's examples.

    for predicate in rule.predicates:
        if predicate.op in ("<", "<=", ">", ">="):
            for this, other in (
                (predicate.left, predicate.right),
                (predicate.right, predicate.left),
            ):
                if isinstance(this, Var) and not isinstance(other, (Var, PatternVar)):
                    restrict(this, _domain_of_constant(other))
    if registry is not None:
        for call in rule.calls:
            if not registry.has(call.function):
                continue
            fn = registry.get(call.function)
            for domain, arg in zip(fn.arg_domains, call.args):
                restrict(arg, domain)
            if call.result is not None:
                restrict(call.result, fn.result_domain)
    return domains


def apply_domains(tree: PChild, domains: Dict[str, Domain]) -> PChild:
    """Rebuild a pattern tree, narrowing variable domains."""
    if isinstance(tree, PNode):
        label = tree.label
        if isinstance(label, Var) and label.name in domains and label.domain == ANY:
            label = Var(label.name, domains[label.name])
        edges = [
            edge.with_target(apply_domains(edge.target, domains))
            for edge in tree.edges
        ]
        return PNode(label, edges)
    return tree


# ---------------------------------------------------------------------------
# Signature inference
# ---------------------------------------------------------------------------


def infer_signature(
    rules: Sequence[Rule],
    registry: Optional[FunctionRegistry] = None,
    name: str = "program",
) -> Signature:
    """Infer ``M_IN |-> M_OUT`` for a rule set.

    Body patterns named identically across rules union their trees into
    one input pattern; likewise head patterns sharing a Skolem functor
    union into one output pattern.
    """
    input_alts: Dict[str, List[PChild]] = {}
    output_alts: Dict[str, List[PChild]] = {}
    for rule in rules:
        domains = refine_domains(rule, registry)
        for bp in rule.body:
            refined = apply_domains(bp.tree, domains)
            alts = input_alts.setdefault(bp.name.name, [])
            if refined not in alts:
                alts.append(refined)
        if rule.head is not None:
            refined = apply_domains(rule.head.tree, domains)
            alts = output_alts.setdefault(rule.head.term.functor, [])
            if refined not in alts:
                alts.append(refined)
    input_model = Model(f"in({name})")
    for pattern_name, alts in input_alts.items():
        input_model.add(Pattern(pattern_name, alts))
    output_model = Model(f"out({name})")
    for pattern_name, alts in output_alts.items():
        output_model.add(Pattern(pattern_name, alts))
    return Signature(input_model, output_model)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def check_input_against(signature: Signature, general: Model) -> None:
    """Verify the inferred input model is an instance of *general*.

    Like all Section 3.5 checks on *inferred* models, this is lenient
    about variable domains: inference leaves many variables with the
    default domain, and "typing in YAT is in no way constraining".
    """
    if not model_is_instance(signature.input_model, general, lenient=True):
        raise TypingError(
            f"input model {signature.input_model.name!r} is not an instance "
            f"of {general.name!r}"
        )


def check_output_against(signature: Signature, general: Model) -> None:
    """Verify the inferred output model is an instance of *general* —
    e.g. "check that a program generates car and supplier objects
    compliant with ... the ODMG model". Lenient about variable domains
    (see :func:`check_input_against`)."""
    if not model_is_instance(signature.output_model, general, lenient=True):
        raise TypingError(
            f"output model {signature.output_model.name!r} is not an instance "
            f"of {general.name!r}"
        )


def compatible_for_composition(out_model: Model, in_model: Model) -> bool:
    """Section 4.3 compatibility: is ``M_2`` (the output model of prg1)
    an instance of ``M_2'`` (the input model of prg2)?

    The check is *lenient* about variable domains (they must intersect,
    not be included): inferred output models leave many variables with
    the default domain, and YAT typing "is in no way constraining" —
    the instantiation of prg2 on the actual patterns is the real gate.
    """
    return model_is_instance(out_model, in_model, lenient=True)
