"""Parser for YATL rules and programs.

The grammar builds on the pattern syntax of :mod:`repro.core.syntax`::

    program SgmlToOdmg

    rule Rule1:
      Psup(SN) :
        class -> supplier < -> name -> SN,
                            -> city -> C,
                            -> zip -> Z >
    <=
      Pbr :
        brochure < -> number -> Num,
                   -> title -> T,
                   -> model -> Year,
                   -> desc -> D,
                   *-> supplier < -> name -> SN, -> address -> Add > >,
      Year > 1975,
      C is city(Add),
      Z is zip(Add)

    end

Body items are comma-separated: named patterns (``Name : tree``),
predicates (``Year > 1975``), function calls (``C is city(Add)``) and
boolean external predicates (``sameaddress(Add, C, Add2)``). An empty
head is written ``()`` (the Rule Exception of Section 3.5).
``hierarchy A under B`` enforces rule order (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.labels import Symbol
from ..core.models import Model
from ..core.patterns import NameTerm
from ..core.syntax import (
    TokenStream,
    parse_name_args,
    parse_model_from,
    parse_pattern_child,
    resolve_pattern_names,
    tokenize,
)
from ..core.variables import PatternVar, Var
from ..errors import SyntaxYatError
from .ast import BodyPattern, Expr, FunctionCall, HeadPattern, Predicate, Rule
from .functions import FunctionRegistry
from .program import Program

_COMPARE_TOKENS = {
    "EQ": "=",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def parse_rule(text: str, known_names: Iterable[str] = ()) -> Rule:
    """Parse a single ``rule Name: head <= body`` declaration."""
    stream = TokenStream(tokenize(text))
    rule = parse_rule_from(stream, set(known_names))
    stream.expect("EOF")
    return rule


def parse_rule_from(stream: TokenStream, known_names: Set[str]) -> Rule:
    stream.expect("RULE")
    name = stream.expect("UIDENT", "IDENT").value
    stream.expect("COLON")
    head = _parse_head(stream, known_names)
    stream.expect("LE")  # the <= separator
    body, predicates, calls = _parse_body(stream, known_names)
    # Rule's constructor normalizes body references (rule Web6's `&Pobj`).
    return Rule(name, head, body, predicates, calls)


def _parse_head(stream: TokenStream, known_names: Set[str]) -> Optional[HeadPattern]:
    if stream.at("LPAREN") and stream.peek(1).type == "RPAREN":
        stream.next()
        stream.next()
        return None  # empty head
    functor = stream.expect("UIDENT").value
    args: List[Union[Var, PatternVar]] = []
    if stream.at("LPAREN"):
        args = parse_name_args(stream)
    stream.expect("COLON")
    tree = resolve_pattern_names(parse_pattern_child(stream), known_names)
    return HeadPattern(NameTerm(functor, args), tree)


def _parse_body(
    stream: TokenStream, known_names: Set[str]
) -> Tuple[List[BodyPattern], List[Predicate], List[FunctionCall]]:
    body: List[BodyPattern] = []
    predicates: List[Predicate] = []
    calls: List[FunctionCall] = []
    while True:
        item = _parse_body_item(stream, known_names)
        if isinstance(item, BodyPattern):
            body.append(item)
        elif isinstance(item, Predicate):
            predicates.append(item)
        else:
            calls.append(item)
        if not stream.accept("COMMA"):
            break
    return body, predicates, calls


def _parse_body_item(
    stream: TokenStream, known_names: Set[str]
) -> Union[BodyPattern, Predicate, FunctionCall]:
    token = stream.peek()
    # UIDENT 'is' function(...)  -> function call with result
    if token.type == "UIDENT" and stream.peek(1).type == "IS":
        result = Var(stream.next().value)
        stream.next()  # 'is'
        function = stream.expect("IDENT").value
        args = _parse_call_args(stream)
        return FunctionCall(result, function, args)
    # IDENT '(' ... ')'  -> boolean external predicate
    if token.type == "IDENT" and stream.peek(1).type == "LPAREN":
        function = stream.next().value
        args = _parse_call_args(stream)
        return FunctionCall(None, function, args)
    # UIDENT ':' ...  -> named body pattern
    if token.type == "UIDENT" and stream.peek(1).type == "COLON":
        name = stream.next().value
        stream.next()  # ':'
        tree = resolve_pattern_names(parse_pattern_child(stream), known_names)
        return BodyPattern(name, tree)
    # otherwise: a predicate  expr op expr
    left = _parse_expr(stream)
    op_token = stream.expect(*_COMPARE_TOKENS)
    right = _parse_expr(stream)
    return Predicate(left, _COMPARE_TOKENS[op_token.type], right)


def _parse_call_args(stream: TokenStream) -> List[Expr]:
    stream.expect("LPAREN")
    args: List[Expr] = []
    if not stream.at("RPAREN"):
        while True:
            args.append(_parse_expr(stream))
            if not stream.accept("COMMA"):
                break
    stream.expect("RPAREN")
    return args


def _parse_expr(stream: TokenStream) -> Expr:
    token = stream.peek()
    if token.type == "UIDENT":
        stream.next()
        return Var(token.value)
    if token.type == "IDENT":
        stream.next()
        return Symbol(token.value)
    if token.type in ("STRING", "INT", "FLOAT", "BOOL"):
        stream.next()
        return token.value
    raise SyntaxYatError(
        f"expected an expression, found {token.value!r}", token.line, token.column
    )


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


def parse_program(
    text: str,
    models: Optional[Dict[str, Model]] = None,
    registry: Optional[FunctionRegistry] = None,
) -> Program:
    """Parse a full ``program ... end`` declaration.

    ``models`` resolves ``input model Name`` / ``output model Name``
    references (built-in models are always available).
    """
    from ..core.models import BUILTIN_MODELS

    stream = TokenStream(tokenize(text))
    stream.expect("PROGRAM")
    name = stream.expect("UIDENT", "IDENT").value
    input_model: Optional[Model] = None
    output_model: Optional[Model] = None
    known_names: Set[str] = set()

    def resolve_model(model_name: str) -> Model:
        if models and model_name in models:
            return models[model_name]
        if model_name in BUILTIN_MODELS:
            return BUILTIN_MODELS[model_name]()
        raise SyntaxYatError(f"unknown model {model_name!r}")

    while stream.at("INPUT", "OUTPUT"):
        direction = stream.next().type
        if stream.at("MODEL") and stream.peek(2).type == "LBRACE":
            model = parse_model_from(stream, known_names)
        else:
            stream.expect("MODEL")
            model = resolve_model(stream.expect("UIDENT", "IDENT").value)
        if direction == "INPUT":
            input_model = model
        else:
            output_model = model
        known_names.update(model.pattern_names())

    program = Program(
        name, registry=registry, input_model=input_model, output_model=output_model
    )
    while True:
        if stream.at("RULE"):
            program.add_rule(parse_rule_from(stream, known_names))
        elif stream.at("HIERARCHY"):
            stream.next()
            specific = stream.expect("UIDENT", "IDENT").value
            stream.expect("UNDER")
            general = stream.expect("UIDENT", "IDENT").value
            program.enforce_order(specific, general)
        elif stream.accept("END"):
            break
        else:
            token = stream.peek()
            raise SyntaxYatError(
                f"expected 'rule', 'hierarchy' or 'end', found {token.value!r}",
                token.line,
                token.column,
            )
    stream.expect("EOF")
    return program
