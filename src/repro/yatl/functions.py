"""External functions and predicates (Section 3.1, phase 2).

"External functions are typed. This means that a type filter is applied
on the set of variable bindings before they are evaluated." — a
:class:`FunctionRegistry` holds named functions with domain signatures;
bindings whose argument values fall outside an argument's domain are
silently filtered out, as are bindings for which a boolean predicate
returns false.

The registry ships the functions used throughout the paper: ``city`` and
``zip`` (address extraction, Rule 1), ``sameaddress`` (Rule 3),
``data_to_string`` (rules Web1/Web2) and ``exception`` (Rule Exception).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.labels import Label, Symbol, is_atom
from ..core.trees import Ref, Tree
from ..core.variables import ANY, Domain, STRING
from ..errors import FunctionError, UnconvertedDataError

#: Values external functions see: constants or whole trees (for pattern
#: variables, e.g. ``data_to_string(Data)``).
Value = Union[Label, Tree, Ref]


class ExternalFunction:
    """A registered external function with its typed signature."""

    __slots__ = ("name", "fn", "arg_domains", "result_domain")

    def __init__(
        self,
        name: str,
        fn: Callable[..., object],
        arg_domains: Sequence[Domain] = (),
        result_domain: Domain = ANY,
    ) -> None:
        self.name = name
        self.fn = fn
        self.arg_domains = tuple(arg_domains)
        self.result_domain = result_domain

    def accepts(self, args: Sequence[Value]) -> bool:
        """The paper's type filter: every constant argument must belong
        to the declared domain. Tree-valued arguments (pattern
        variables) pass through untyped."""
        if self.arg_domains and len(args) != len(self.arg_domains):
            return False
        for domain, value in zip(self.arg_domains, args):
            if isinstance(value, (Tree, Ref)):
                continue
            if not domain.contains(value):
                return False
        return True

    def __call__(self, *args: Value) -> object:
        return self.fn(*args)

    def __repr__(self) -> str:
        domains = ", ".join(d.render() for d in self.arg_domains) or "..."
        return f"ExternalFunction({self.name}({domains}) -> {self.result_domain.render()})"


class FunctionRegistry:
    """Name → external function table, shared by a program's rules."""

    def __init__(self, parent: Optional["FunctionRegistry"] = None) -> None:
        self._functions: Dict[str, ExternalFunction] = {}
        self._parent = parent

    def register(
        self,
        name: str,
        fn: Callable[..., object],
        arg_domains: Sequence[Domain] = (),
        result_domain: Domain = ANY,
    ) -> ExternalFunction:
        wrapped = ExternalFunction(name, fn, arg_domains, result_domain)
        self._functions[name] = wrapped
        return wrapped

    def get(self, name: str) -> ExternalFunction:
        found = self._functions.get(name)
        if found is None and self._parent is not None:
            return self._parent.get(name)
        if found is None:
            raise FunctionError(f"unknown external function {name!r}")
        return found

    def has(self, name: str) -> bool:
        if name in self._functions:
            return True
        return self._parent.has(name) if self._parent else False

    def names(self) -> List[str]:
        inherited = self._parent.names() if self._parent else []
        return sorted(set(inherited) | set(self._functions))

    def child(self) -> "FunctionRegistry":
        """A registry layered on top of this one (program-local functions)."""
        return FunctionRegistry(parent=self)


# ---------------------------------------------------------------------------
# Standard library
# ---------------------------------------------------------------------------

_ZIP_RE = re.compile(r"\b(\d{4,6})\b")


def fn_city(address: str) -> str:
    """Extract the city from a one-line address.

    Addresses follow the loose convention of the paper's examples:
    ``"Bd Lenoir, Paris 75005"`` — the city is the last alphabetic word
    group after the final comma (or of the string when there is none).
    """
    tail = address.rsplit(",", 1)[-1]
    words = [w for w in tail.replace(".", " ").split() if not w.isdigit()]
    if not words:
        raise FunctionError(f"cannot extract a city from {address!r}")
    return " ".join(words)


def fn_zip(address: str) -> int:
    """Extract the numeric zip code from a one-line address."""
    match = _ZIP_RE.search(address)
    if match is None:
        raise FunctionError(f"cannot extract a zip code from {address!r}")
    return int(match.group(1))


def _normalize_address(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", " ", text.lower()).strip()


def fn_sameaddress(address: str, city: str, other: str) -> bool:
    """Heterogeneity resolver of Rule 3: does the SGML address (a single
    line including the city) denote the same place as the relational
    (address, city) pair?"""
    left = _normalize_address(address)
    right = _normalize_address(f"{other} {city}")
    right_no_city = _normalize_address(other)
    return left == right or left == right_no_city or right_no_city in left


def fn_data_to_string(data: Value) -> str:
    """Rules Web1/Web2: render an atomic value (or symbol) as a string."""
    if isinstance(data, Tree):
        if data.is_leaf:
            return fn_data_to_string(data.label)
        raise FunctionError("data_to_string expects an atomic value")
    if isinstance(data, Ref):
        return f"&{data.target}"
    if isinstance(data, bool):
        return "true" if data else "false"
    if isinstance(data, Symbol):
        return data.name
    if is_atom(data):
        return str(data)
    raise FunctionError(f"data_to_string: unsupported value {data!r}")


def fn_exception(data: Value) -> bool:
    """The Rule Exception function of Section 3.5."""
    raise UnconvertedDataError(f"input data not converted by any rule: {data!r}")


def fn_concat(*parts: Value) -> str:
    return "".join(fn_data_to_string(p) for p in parts)


def fn_lower(text: str) -> str:
    return text.lower()


def fn_upper(text: str) -> str:
    return text.upper()


def fn_length(value: Value) -> int:
    if isinstance(value, Tree):
        return len(value.children)
    if isinstance(value, str):
        return len(value)
    raise FunctionError(f"length: unsupported value {value!r}")


def fn_att_label(att: Value) -> str:
    """Display label for an attribute or tuple-field name, used by the
    O2Web program (``name`` → ``"name: "``)."""
    if isinstance(att, Symbol):
        return f"{att.name}: "
    if isinstance(att, str):
        return f"{att}: "
    raise FunctionError(f"att_label expects a symbol, got {att!r}")


def standard_registry() -> FunctionRegistry:
    """A registry preloaded with the paper's external functions."""
    registry = FunctionRegistry()
    registry.register("city", fn_city, [STRING], STRING)
    registry.register("zip", fn_zip, [STRING])
    registry.register("sameaddress", fn_sameaddress, [STRING, STRING, STRING])
    registry.register("data_to_string", fn_data_to_string, [ANY], STRING)
    registry.register("exception", fn_exception, [ANY])
    registry.register("concat", fn_concat)
    registry.register("lower", fn_lower, [STRING], STRING)
    registry.register("upper", fn_upper, [STRING], STRING)
    registry.register("length", fn_length, [ANY])
    registry.register("att_label", fn_att_label, [ANY], STRING)
    return registry


# ---------------------------------------------------------------------------
# Predicate evaluation
# ---------------------------------------------------------------------------

_COMPARABLE_KINDS = {
    "number": (int, float),
    "string": (str,),
}


def _comparison_kind(value: Value) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, Symbol):
        return "symbol"
    return None


def evaluate_comparison(left: Value, op: str, right: Value) -> bool:
    """Evaluate a predicate. Equality works on any values (including
    trees); order comparisons require mutually comparable constants —
    incomparable bindings are filtered out (return False), matching the
    type-filter semantics of phase 2."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    left_kind = _comparison_kind(left)
    if left_kind != _comparison_kind(right) or left_kind in (None, "bool"):
        return False
    if left_kind == "symbol":
        left, right = left.name, right.name  # type: ignore[union-attr]
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise FunctionError(f"unknown comparison operator {op!r}")
