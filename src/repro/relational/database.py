"""A named collection of tables — the "relational system" of Figure 1."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..errors import SchemaError
from .schema import DatabaseSchema
from .table import Table


class Database:
    """Tables instantiated from a :class:`DatabaseSchema`."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._tables: Dict[str, Table] = {
            ts.name: Table(ts) for ts in schema.tables()
        }

    @property
    def name(self) -> str:
        return self.schema.name

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"database {self.name!r} has no table {name!r}"
            ) from None

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        return list(self._tables)

    def insert(self, table_name: str, *values: object) -> None:
        self.table(table_name).insert(*values)

    def __iter__(self) -> Iterator[Tuple[str, Table]]:
        return iter(self._tables.items())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}({len(t)})" for n, t in self._tables.items())
        return f"Database({self.name!r}: {sizes})"
