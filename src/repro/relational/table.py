"""Tables: validated row storage with a small query surface.

The engine is deliberately small — the paper's wrapper only needs to
enumerate rows in insertion order — but offers the selections,
projections and joins the benchmarks and examples use to prepare
workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from .schema import TableSchema

Row = Tuple[object, ...]


class Table:
    """Rows under a schema, preserving insertion order.

    A primary key, when declared, is enforced with an index; the same
    index serves point lookups.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._key_index: Dict[object, int] = {}

    @property
    def name(self) -> str:
        return self.schema.name

    # -- mutation -----------------------------------------------------------

    def insert(self, *values: object) -> Row:
        """Insert one row (positional values in column order)."""
        row = self.schema.validate_row(values)
        key_pos = self.schema.key_index()
        if key_pos is not None:
            key = row[key_pos]
            if key in self._key_index:
                raise SchemaError(
                    f"table {self.name!r}: duplicate key {key!r}"
                )
            self._key_index[key] = len(self._rows)
        self._rows.append(row)
        return row

    def insert_dict(self, values: Dict[str, object]) -> Row:
        """Insert one row from a column-name mapping."""
        ordered = []
        for column in self.schema.columns:
            if column.name not in values and not column.nullable:
                raise SchemaError(
                    f"table {self.name!r}: missing value for {column.name!r}"
                )
            ordered.append(values.get(column.name))
        extra = set(values) - set(self.schema.column_names())
        if extra:
            raise SchemaError(
                f"table {self.name!r}: unknown column(s) {sorted(extra)}"
            )
        return self.insert(*ordered)

    def insert_many(self, rows: Sequence[Sequence[object]]) -> None:
        for row in rows:
            self.insert(*row)

    # -- access -------------------------------------------------------------

    def rows(self) -> List[Row]:
        return list(self._rows)

    def row_dicts(self) -> List[Dict[str, object]]:
        names = self.schema.column_names()
        return [dict(zip(names, row)) for row in self._rows]

    def get(self, key: object) -> Optional[Row]:
        """Point lookup by primary key."""
        if self.schema.key is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        index = self._key_index.get(key)
        return self._rows[index] if index is not None else None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    # -- queries ------------------------------------------------------------

    def select(self, predicate: Callable[[Dict[str, object]], bool]) -> "Table":
        """Rows satisfying a predicate over column-name dicts."""
        result = Table(self.schema)
        names = self.schema.column_names()
        for row in self._rows:
            if predicate(dict(zip(names, row))):
                result.insert(*row)
        return result

    def project(self, columns: Sequence[str]) -> "Table":
        """Keep only the given columns (duplicates are preserved; the
        projected schema drops the key if it was projected away)."""
        kept = [self.schema.column(c) for c in columns]
        key = self.schema.key if self.schema.key in columns else None
        schema = TableSchema(self.schema.name, kept, key=key)
        result = Table(schema)
        indexes = [self.schema.column_names().index(c) for c in columns]
        seen_keys = set()
        for row in self._rows:
            projected = tuple(row[i] for i in indexes)
            if key is not None:
                key_value = projected[columns.index(key)]
                if key_value in seen_keys:
                    continue
                seen_keys.add(key_value)
            result.insert(*projected)
        return result

    def join(self, other: "Table", on: Sequence[Tuple[str, str]]) -> List[
        Tuple[Dict[str, object], Dict[str, object]]
    ]:
        """Equi-join: pairs of row dicts agreeing on the given column
        pairs. Hash join on the first pair, residual check on the rest."""
        if not on:
            raise SchemaError("join needs at least one column pair")
        first_left, first_right = on[0]
        buckets: Dict[object, List[Dict[str, object]]] = {}
        for right_row in other.row_dicts():
            buckets.setdefault(right_row[first_right], []).append(right_row)
        matches = []
        for left_row in self.row_dicts():
            for right_row in buckets.get(left_row[first_left], ()):
                if all(left_row[lc] == right_row[rc] for lc, rc in on[1:]):
                    matches.append((left_row, right_row))
        return matches

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows)"
