"""Relational substrate: the "relational system" of Figure 1."""

from .schema import Column, DatabaseSchema, TableSchema, dealer_schema
from .table import Row, Table
from .database import Database
from .csvio import dump_csv, load_csv

__all__ = [
    "Column",
    "DatabaseSchema",
    "TableSchema",
    "dealer_schema",
    "Row",
    "Table",
    "Database",
    "dump_csv",
    "load_csv",
]
