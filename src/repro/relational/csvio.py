"""CSV import/export for the relational substrate.

Values are coerced to the column's declared type on load, so a CSV file
round-trips through a typed table.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from ..errors import SchemaError
from .schema import Column, TableSchema
from .table import Table


def _coerce(column: Column, text: str) -> object:
    if text == "" and column.nullable:
        return None
    if column.type_name == "int":
        try:
            return int(text)
        except ValueError:
            raise SchemaError(
                f"column {column.name!r}: {text!r} is not an int"
            ) from None
    if column.type_name == "float":
        try:
            return float(text)
        except ValueError:
            raise SchemaError(
                f"column {column.name!r}: {text!r} is not a float"
            ) from None
    if column.type_name == "bool":
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise SchemaError(f"column {column.name!r}: {text!r} is not a bool")
    return text


def load_csv(schema: TableSchema, text: str, header: bool = True) -> Table:
    """Build a table from CSV text; with ``header`` the first row must
    name the schema's columns (in any order)."""
    table = Table(schema)
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return table
    order: Sequence[int]
    if header:
        names = rows[0]
        unknown = set(names) - set(schema.column_names())
        if unknown:
            raise SchemaError(f"unknown CSV column(s): {sorted(unknown)}")
        missing = set(schema.column_names()) - set(names)
        if missing:
            raise SchemaError(f"missing CSV column(s): {sorted(missing)}")
        order = [names.index(c) for c in schema.column_names()]
        rows = rows[1:]
    else:
        order = list(range(len(schema.columns)))
    for raw in rows:
        if not raw:
            continue
        if len(raw) < len(schema.columns):
            raise SchemaError(
                f"CSV row has {len(raw)} values, expected {len(schema.columns)}"
            )
        values = [
            _coerce(column, raw[index])
            for column, index in zip(schema.columns, order)
        ]
        table.insert(*values)
    return table


def dump_csv(table: Table, header: bool = True) -> str:
    """Serialize a table to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if header:
        writer.writerow(table.schema.column_names())
    for row in table.rows():
        writer.writerow(["" if v is None else v for v in row])
    return buffer.getvalue()
