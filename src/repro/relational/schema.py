"""Relational schemas (Section 3.2's suppliers/cars/sales database).

A :class:`TableSchema` declares ordered, typed columns and an optional
primary key; a :class:`DatabaseSchema` groups tables. Types are the YAT
atomic domains, so wrapped rows type-check against the relational model
of :func:`repro.core.models.relational_model`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.variables import Domain, domain_by_name
from ..errors import SchemaError


class Column:
    """A named, typed column. ``type_name`` is a YAT atomic type name
    (``string``, ``int``, ``float``, ``bool``)."""

    __slots__ = ("name", "type_name", "domain", "nullable")

    def __init__(self, name: str, type_name: str, nullable: bool = False) -> None:
        if not name or not name[0].islower():
            raise SchemaError(f"column names start with a lowercase letter: {name!r}")
        try:
            domain = domain_by_name(type_name)
        except ValueError as exc:
            raise SchemaError(str(exc)) from None
        self.name = name
        self.type_name = type_name
        self.domain: Domain = domain
        self.nullable = nullable

    def accepts(self, value: object) -> bool:
        if value is None:
            return self.nullable
        return self.domain.contains(value)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        suffix = "?" if self.nullable else ""
        return f"{self.name}: {self.type_name}{suffix}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and other.name == self.name
            and other.type_name == self.type_name
            and other.nullable == self.nullable
        )


class TableSchema:
    """An ordered set of columns with an optional primary key."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        key: Optional[str] = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        if key is not None and key not in names:
            raise SchemaError(f"table {name!r}: key column {key!r} does not exist")
        self.name = name
        self.columns = list(columns)
        self.key = key
        self._by_name: Dict[str, Column] = {c.name: c for c in columns}

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def validate_row(self, row: Sequence[object]) -> Tuple[object, ...]:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        for column, value in zip(self.columns, row):
            if not column.accepts(value):
                raise SchemaError(
                    f"table {self.name!r}: value {value!r} is not a valid "
                    f"{column.type_name} for column {column.name!r}"
                )
        return tuple(row)

    def key_index(self) -> Optional[int]:
        if self.key is None:
            return None
        return self.column_names().index(self.key)

    def __repr__(self) -> str:
        cols = ", ".join(repr(c) for c in self.columns)
        return f"TableSchema({self.name}[{cols}], key={self.key})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TableSchema)
            and other.name == self.name
            and other.columns == self.columns
            and other.key == self.key
        )


class DatabaseSchema:
    """A named collection of table schemas."""

    def __init__(self, name: str, tables: Iterable[TableSchema] = ()) -> None:
        self.name = name
        self._tables: Dict[str, TableSchema] = {}
        for table in tables:
            self.add(table)

    def add(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise SchemaError(f"schema {self.name!r} already has table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no table {name!r}") from None

    def table_names(self) -> List[str]:
        return list(self._tables)

    def tables(self) -> List[TableSchema]:
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __repr__(self) -> str:
        return f"DatabaseSchema({self.name!r}, tables={self.table_names()})"


def dealer_schema() -> DatabaseSchema:
    """The Section 3.2 relational schema of the car dealer company."""
    return DatabaseSchema(
        "dealer",
        [
            TableSchema(
                "suppliers",
                [
                    Column("sid", "int"),
                    Column("name", "string"),
                    Column("city", "string"),
                    Column("address", "string"),
                    Column("tel", "string"),
                ],
                key="sid",
            ),
            TableSchema(
                "cars",
                [Column("cid", "int"), Column("broch_num", "string")],
                key="cid",
            ),
            TableSchema(
                "sales",
                [
                    Column("sid", "int"),
                    Column("cid", "int"),
                    Column("year", "int"),
                    Column("sold", "int"),
                ],
            ),
        ],
    )
