"""The YAT system facade (Section 5, Figure 6).

:class:`YatSystem` wires the three parts of the architecture together:

* the **specification environment** — loading programs from the library,
  customizing them by instantiation, combining and composing them, and
  type checking on demand;
* the **run-time environment** — import wrappers, the YATL interpreter,
  export wrappers;
* the **library** of programs and formats.

The ``translate`` helpers run complete pipelines, e.g. the Figure 1
scenario: relational + SGML sources → ODMG objects → HTML pages.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Union

from .core.models import Model
from .core.patterns import Pattern
from .core.trees import DataStore, Tree
from .errors import YatError
from .library.store import Library, standard_library
from .obs import MetricsRegistry, ProvenanceStore, collecting, span, tracing
from .objectdb.schema import ObjectSchema
from .objectdb.store import ObjectStore
from .relational.database import Database
from .sgml.document import Element
from .sgml.dtd import DTD
from .wrappers.html import HtmlExportWrapper
from .wrappers.odmg import OdmgExportWrapper, OdmgImportWrapper
from .wrappers.relational import RelationalImportWrapper
from .wrappers.sgml import SgmlImportWrapper
from .yatl.interpreter import ConversionResult
from .yatl.program import Program
from .yatl.typing import Signature


class YatSystem:
    """A complete YAT environment.

    ``metrics`` is the system-level :class:`~repro.obs.MetricsRegistry`
    every run-time operation (imports, conversions, exports, store
    merges) accounts into — one registry per system, aggregating
    across pipeline runs. Pass a registry to share it wider, e.g.
    with a metrics endpoint.

    ``provenance`` is the optional system-level
    :class:`~repro.obs.ProvenanceStore`. When given, every run-time
    operation records into it: wrappers stamp imported node ids with
    their source, conversions add per-firing records, and
    ``merge_stores`` renames become ``merge.rename`` pseudo records —
    so lineage chains stay connected *across* the programs of a
    pipeline (output ``c1`` of the object-translation program is input
    ``c1`` of the HTML-publication program; joining is by node name,
    which cross-program renames keep unique). Without it, per-firing
    recording is off (runs still get exact name-level origins).
    """

    def __init__(
        self,
        library: Optional[Library] = None,
        metrics: Optional[MetricsRegistry] = None,
        provenance: Optional[ProvenanceStore] = None,
    ) -> None:
        self.library = library if library is not None else standard_library()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.provenance = provenance
        # Parsed-program cache: a long-running server converts with the
        # same few programs thousands of times; parsing them once per
        # request would dominate small-payload latency.
        self._program_cache: Dict[str, Program] = {}
        self._program_cache_lock = threading.Lock()
        # Invalidation fan-out: save_program already evicts the parsed
        # program from this cache, but long-running servers hold more
        # derived state keyed by program name (conversion result
        # caches, coalescer shard specs). They subscribe here so one
        # save invalidates every layer atomically from the caller's
        # point of view.
        self._invalidation_listeners: List = []

    def _tracing(self):
        """The ambient-provenance context for run-time operations: a
        real `tracing` block when the system has a store, else a no-op
        (never install a fresh store the caller can't see)."""
        if self.provenance is not None:
            return tracing(self.provenance)
        return nullcontext(None)

    # ------------------------------------------------------------------
    # Specification environment
    # ------------------------------------------------------------------

    def import_program(self, name: str) -> Program:
        """Import a conversion program from the library."""
        return self.library.load_program(name)

    def load_program_cached(self, name: str) -> Program:
        """Import a library program through the system's thread-safe
        parse cache (the serving hot path). Cache accounting lands in
        ``system.programs.cache_hits`` / ``.cache_misses``."""
        with self._program_cache_lock:
            program = self._program_cache.get(name)
        if program is not None:
            self.metrics.counter(
                "system.programs.cache_hits", "program-cache hits"
            ).inc(program=name)
            return program
        program = self.library.load_program(name)
        self.metrics.counter(
            "system.programs.cache_misses", "program-cache misses (parses)"
        ).inc(program=name)
        with self._program_cache_lock:
            # A concurrent loader may have won the race; keep the first
            # entry so every request sees one identical Program object.
            return self._program_cache.setdefault(name, program)

    def warm(self, names: Optional[Sequence[str]] = None) -> List[str]:
        """Preload library programs into the parse cache (readiness
        warmup for :mod:`repro.serve`). Defaults to every program in
        the library; returns the warmed names."""
        warmed = list(names) if names is not None else self.library.program_names()
        for name in warmed:
            self.load_program_cached(name)
        self.metrics.gauge(
            "system.programs.warmed", "programs preloaded into the cache"
        ).set(len(warmed))
        return warmed

    def add_invalidation_listener(self, listener) -> None:
        """Subscribe ``listener(program_name)`` to program-change
        events: called (after the parsed-program cache eviction) every
        time :meth:`save_program` persists a program, so serving-side
        caches keyed by program name can drop derived state. Listeners
        must be fast and must not raise."""
        with self._program_cache_lock:
            self._invalidation_listeners.append(listener)

    def save_program(self, program: Program) -> str:
        name = self.library.save_program(program)
        # The library text changed: drop the stale parsed Program so a
        # long-running server's next load re-parses the new version,
        # then notify subscribed caches (conversion results, coalescer
        # specs) before any caller can observe the save.
        with self._program_cache_lock:
            self._program_cache.pop(name, None)
            listeners = list(self._invalidation_listeners)
        for listener in listeners:
            listener(name)
        return name

    def import_model(self, name: str) -> Model:
        return self.library.load_model(name)

    def customize(
        self,
        program: Program,
        patterns: Union[Pattern, Sequence[Pattern], Model],
        name: Optional[str] = None,
    ) -> Program:
        """Instantiate a general program on specific pattern(s), ready
        for further hand-customization (Section 4.1)."""
        return program.instantiated_on(patterns, name=name)

    def combine(self, *programs: Program, name: Optional[str] = None) -> Program:
        """Combine programs; rule hierarchies arbitrate the conflicts
        (Section 4.2)."""
        if not programs:
            raise YatError("combine needs at least one program")
        combined = programs[0]
        for program in programs[1:]:
            combined = combined.combined_with(program)
        if name is not None:
            combined.name = name
        return combined

    def compose(
        self, first: Program, second: Program, name: Optional[str] = None
    ) -> Program:
        """Compose two programs into a one-step conversion (Section 4.3)."""
        return first.composed_with(second, name=name)

    def type_check(self, program: Program) -> Signature:
        """On-demand typing (Section 3.5): infer the signature and check
        it against the program's declared models."""
        program.check_models()
        return program.signature()

    # ------------------------------------------------------------------
    # Run-time environment
    # ------------------------------------------------------------------

    def import_relational(self, database: Database) -> DataStore:
        with collecting(self.metrics), self._tracing():
            return RelationalImportWrapper().to_store(database)

    def import_sgml(
        self,
        documents: Sequence[Element],
        dtd: Optional[DTD] = None,
        coerce_numbers: bool = True,
    ) -> DataStore:
        """Import SGML documents. ``coerce_numbers`` turns numeric PCDATA
        into numbers (needed by Rule 1's ``Year > 1975``); disable it
        when joining against string-typed relational columns (Rule 3's
        ``Num``/``broch_num``)."""
        with collecting(self.metrics), self._tracing():
            return SgmlImportWrapper(
                dtd=dtd, coerce_numbers=coerce_numbers
            ).to_store(documents)

    def import_odmg(self, store: ObjectStore) -> DataStore:
        with collecting(self.metrics), self._tracing():
            return OdmgImportWrapper().to_store(store)

    def merge_stores(self, *stores: DataStore) -> DataStore:
        """Union several source stores, renaming on name collisions.

        A colliding name first tries ``name@index``; if a source
        already contains that spelling (e.g. source 0 holds both ``x``
        and ``x@1``), numeric ``~2``, ``~3``... suffixes are appended
        until the name is free, so merging never silently drops a
        tree. Renames are counted in ``system.merge.renames``.
        """
        merged = DataStore()
        renames = 0
        for index, store in enumerate(stores):
            for name, node in store:
                unique = name
                if unique in merged:
                    unique = f"{name}@{index}"
                    attempt = 2
                    while unique in merged:
                        unique = f"{name}@{index}~{attempt}"
                        attempt += 1
                    renames += 1
                    if self.provenance is not None:
                        # Keep lineage chains connected through the
                        # rename (backward from consumers of `unique`
                        # reaches the producers of `name`).
                        self.provenance.alias(unique, name)
                merged.add(unique, node)
        self.metrics.counter(
            "system.merge.stores", "merge_stores invocations"
        ).inc()
        if renames:
            self.metrics.counter(
                "system.merge.renames", "trees renamed to avoid collisions"
            ).inc(renames)
        return merged

    def run(
        self,
        program: Program,
        data: Union[DataStore, Sequence[Tree], Tree],
        runtime_typing: bool = False,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        executor=None,
    ) -> ConversionResult:
        """Convert *data* under the system's metrics/provenance context.
        ``workers``/``chunk_size``/``executor`` select the multi-process
        executor of :mod:`repro.parallel` (the serve plane passes its
        shared pool here)."""
        with collecting(self.metrics), self._tracing():
            return program.run(
                data,
                runtime_typing=runtime_typing,
                workers=workers,
                chunk_size=chunk_size,
                executor=executor,
            )

    def export_odmg(
        self, result: ConversionResult, schema: ObjectSchema
    ) -> ObjectStore:
        with collecting(self.metrics), self._tracing():
            return OdmgExportWrapper(schema).from_store(result.store)

    def export_html(
        self, result: ConversionResult, functor: str = "HtmlPage"
    ) -> Dict[str, str]:
        with collecting(self.metrics), self._tracing():
            return HtmlExportWrapper().export_result(result, functor)

    # ------------------------------------------------------------------
    # Scenario pipelines (Figure 1)
    # ------------------------------------------------------------------

    def translate_to_objects(
        self,
        program: Program,
        schema: ObjectSchema,
        sgml_documents: Sequence[Element] = (),
        database: Optional[Database] = None,
        dtd: Optional[DTD] = None,
    ) -> ObjectStore:
        """Sources → ODMG objects: the materialized variant of Figure 1
        arrow (1)."""
        with collecting(self.metrics), self._tracing(), span(
            "pipeline", program=program.name, target="odmg"
        ):
            stores = []
            if sgml_documents:
                stores.append(self.import_sgml(sgml_documents, dtd))
            if database is not None:
                stores.append(self.import_relational(database))
            if not stores:
                raise YatError("translate_to_objects needs at least one source")
            result = self.run(program, self.merge_stores(*stores))
            return self.export_odmg(result, schema)

    def publish_to_html(
        self, program: Program, objects: ObjectStore
    ) -> Dict[str, str]:
        """ODMG objects → HTML pages: Figure 1 arrow (2)."""
        with collecting(self.metrics), self._tracing(), span(
            "pipeline", program=program.name, target="html"
        ):
            result = self.run(program, self.import_odmg(objects))
            return self.export_html(result)

    def __repr__(self) -> str:
        return f"YatSystem({self.library!r})"
