"""Pattern and model instantiation (Section 2).

"Model Instantiation relies on pattern instantiation which itself relies
on variable domain inclusion. More precisely, (i) each pattern of the
instance model must be an instance of some pattern of the source model
and (ii) a variable can be instantiated either by a constant belonging
to the variable's domain or by a variable whose domain is a subset."

Edge instantiation follows the paper's indicators of occurrence: a plain
edge can only be replaced by a plain edge; a ``*`` edge can be replaced
by **any ordered sequence of edges, with or without label**.

Recursive patterns (``Ptype`` referring to itself through collections,
``Pcar``/``Psup`` referencing each other) make the check co-inductive: a
pair of patterns currently being compared is *assumed* to instantiate —
the greatest-fixpoint reading — which terminates and accepts exactly the
cyclic schemas of Figure 2.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple, Union

from ..errors import InstantiationError, ModelError
from .labels import Label
from .patterns import (
    ONE,
    NameTerm,
    PChild,
    PEdge,
    PNameLeaf,
    PNode,
    Pattern,
    PRefLeaf,
    PVarLeaf,
    edge_one,
)
from .trees import DataStore, Ref, Tree
from .variables import PatternVar, Var

# A "thing being instantiated" is either a pattern child or ground data.
Instance = Union[PChild, Tree, Ref]


class InstantiationContext:
    """Carries the models needed to resolve pattern names during a check.

    ``source_model`` resolves names on the *source* (more general) side,
    ``instance_model`` on the instance side, and ``store`` lets ground
    references be followed when checking actual data.

    Models are any objects exposing ``get_pattern(name) -> Pattern | None``
    (see :mod:`repro.core.models`); plain dicts work too.
    """

    def __init__(
        self,
        source_model=None,
        instance_model=None,
        store: Optional[DataStore] = None,
        lenient: bool = False,
    ) -> None:
        self.source_model = source_model
        self.instance_model = instance_model
        self.store = store
        # Lenient mode (program-composition compatibility, Section 4.3):
        # variable domains only need to *intersect*. Typing in YAT "is
        # in no way constraining" — an untyped variable may well hold
        # values of the required type at run time.
        self.lenient = lenient
        # Co-induction state: pairs assumed true while being explored,
        # plus a cache of settled answers.
        self._assumed: Set[Tuple[object, object]] = set()
        self._settled: Dict[Tuple[object, object], bool] = {}

    # -- name resolution ----------------------------------------------------

    def resolve_source(self, name: str) -> Optional[Pattern]:
        return _lookup(self.source_model, name)

    def resolve_instance(self, name: str) -> Optional[Pattern]:
        # An instance-side name may also be defined in the source model
        # (e.g. checking a single pattern against its own model).
        found = _lookup(self.instance_model, name)
        if found is None:
            found = _lookup(self.source_model, name)
        return found

    # -- co-inductive memoization -------------------------------------------

    def check_pair(self, instance_key: object, source_key: object, compute) -> bool:
        key = (instance_key, source_key)
        if key in self._settled:
            return self._settled[key]
        if key in self._assumed:
            return True  # co-inductive assumption
        self._assumed.add(key)
        try:
            result = compute()
        finally:
            self._assumed.discard(key)
        self._settled[key] = result
        return result


def _lookup(model, name: str) -> Optional[Pattern]:
    if model is None:
        return None
    if isinstance(model, dict):
        return model.get(name)
    getter = getattr(model, "get_pattern", None)
    if getter is None:
        raise ModelError(f"cannot resolve pattern names in {model!r}")
    return getter(name)


# ---------------------------------------------------------------------------
# Ground data <-> ground patterns
# ---------------------------------------------------------------------------


def tree_to_pattern(node: Union[Tree, Ref]) -> PChild:
    """Convert a ground tree into the equivalent ground pattern tree."""
    if isinstance(node, Ref):
        return PRefLeaf(NameTerm(_reference_name(node.target)))
    edges = [edge_one(tree_to_pattern(child)) for child in node.children]
    return PNode(node.label, edges)


def pattern_to_tree(node: PChild) -> Union[Tree, Ref]:
    """Convert a ground pattern tree back into a data tree.

    Raises :class:`InstantiationError` if the pattern is not ground.
    """
    if isinstance(node, PRefLeaf):
        if isinstance(node.target, NameTerm) and not node.target.args:
            return Ref(_dereference_name(node.target.functor))
        raise InstantiationError(f"non-ground reference leaf: {node!r}")
    if not isinstance(node, PNode):
        raise InstantiationError(f"non-ground pattern node: {node!r}")
    if isinstance(node.label, Var):
        raise InstantiationError(f"variable label in ground pattern: {node.label!r}")
    children = []
    for edge in node.edges:
        if edge.kind != ONE:
            raise InstantiationError(f"non-plain edge in ground pattern: {edge!r}")
        children.append(pattern_to_tree(edge.target))
    return Tree(node.label, children)


def _reference_name(target: str) -> str:
    # Data-level names like "s1" are not valid pattern names (they start
    # lowercase); capitalize behind a marker so the round trip is exact.
    return "Ref_" + target


def _dereference_name(functor: str) -> str:
    if functor.startswith("Ref_"):
        return functor[len("Ref_"):]
    return functor


# ---------------------------------------------------------------------------
# The instantiation check
# ---------------------------------------------------------------------------


def is_instance(
    instance: Union[Instance, Pattern],
    source: Union[PChild, Pattern],
    context: Optional[InstantiationContext] = None,
) -> bool:
    """True if *instance* is an instance of *source*.

    Both arguments may be whole patterns (unions), pattern trees, or —
    on the instance side — ground data trees.
    """
    ctx = context or InstantiationContext()
    if isinstance(instance, Pattern) or isinstance(source, Pattern):
        inst_alts = (
            instance.alternatives if isinstance(instance, Pattern) else (instance,)
        )
        src_alts = source.alternatives if isinstance(source, Pattern) else (source,)
        # Memo keys must be structural: keying on id() is unsound when
        # a temporary node is garbage-collected and its address reused
        # within the lifetime of a shared context.
        inst_key = instance.name if isinstance(instance, Pattern) else instance
        src_key = source.name if isinstance(source, Pattern) else source

        def compute() -> bool:
            return all(
                any(_child_instance(i_alt, s_alt, ctx) for s_alt in src_alts)
                for i_alt in inst_alts
            )

        return ctx.check_pair(inst_key, src_key, compute)
    return _child_instance(instance, source, ctx)


def check_instance(
    instance: Union[Instance, Pattern],
    source: Union[PChild, Pattern],
    context: Optional[InstantiationContext] = None,
) -> None:
    """Like :func:`is_instance` but raises on failure."""
    if not is_instance(instance, source, context):
        raise InstantiationError(f"{_describe(instance)} is not an instance of "
                                 f"{_describe(source)}")


def _describe(item: object) -> str:
    if isinstance(item, Pattern):
        return f"pattern {item.name}"
    text = str(item)
    return text if len(text) <= 60 else text[:57] + "..."


def _child_instance(instance: Instance, source: PChild, ctx: InstantiationContext) -> bool:
    # --- source is a pattern-variable leaf: binds any subtree, possibly
    # constrained to a pattern domain.
    if isinstance(source, PVarLeaf):
        domain = source.var.domain_pattern
        if domain is None:
            return True
        resolved = ctx.resolve_source(domain)
        if resolved is None:
            return True
        return _against_pattern(instance, domain, resolved, ctx)

    # --- source is a pattern-name leaf: dereference, check the instance
    # against the named pattern's definition.
    if isinstance(source, PNameLeaf):
        functor = source.term.functor
        resolved = ctx.resolve_source(functor)
        if resolved is None:
            return True  # unresolvable names behave like wildcards
        return _against_pattern(instance, functor, resolved, ctx)

    # --- source is a reference leaf.
    if isinstance(source, PRefLeaf):
        return _reference_instance(instance, source, ctx)

    # --- source is an ordinary node: instance must also be a node (or
    # ground tree, or an instance-side name to expand).
    if isinstance(instance, PNameLeaf):
        definition = ctx.resolve_instance(instance.term.functor)
        if definition is None:
            return False

        def compute() -> bool:
            return all(
                _child_instance(alt, source, ctx) for alt in definition.alternatives
            )

        return ctx.check_pair(instance.term.functor, source, compute)
    if isinstance(instance, PVarLeaf):
        domain = instance.var.domain_pattern
        if domain is None:
            # an unconstrained variable is *more* general — but in
            # lenient mode it may well hold a conforming value
            return ctx.lenient
        definition = ctx.resolve_instance(domain)
        if definition is None:
            return ctx.lenient

        def compute() -> bool:
            return all(
                _child_instance(alt, source, ctx) for alt in definition.alternatives
            )

        return ctx.check_pair(domain, source, compute)
    if isinstance(instance, (PRefLeaf, Ref)):
        return False  # a reference cannot instantiate a plain node

    # instance is PNode or Tree
    if not _label_instance(_label_of(instance), source.label, ctx):
        return False
    instance_edges = _edges_of(instance)
    return _edges_instance(instance_edges, source.edges, ctx)


def _against_pattern(
    instance: Instance, name: str, pattern: Pattern, ctx: InstantiationContext
) -> bool:
    if isinstance(instance, (PNameLeaf,)):
        # name-vs-name: co-inductive pattern comparison
        definition = ctx.resolve_instance(instance.term.functor)
        if instance.term.functor == name:
            return True
        if definition is None:
            return False

        def compute() -> bool:
            return all(
                any(
                    _child_instance(i_alt, s_alt, ctx)
                    for s_alt in pattern.alternatives
                )
                for i_alt in definition.alternatives
            )

        return ctx.check_pair(instance.term.functor, name, compute)
    if isinstance(instance, PVarLeaf) and instance.var.domain_pattern is not None:
        if instance.var.domain_pattern == name:
            return True
        definition = ctx.resolve_instance(instance.var.domain_pattern)
        if definition is None:
            return False

        def compute() -> bool:
            return all(
                any(
                    _child_instance(i_alt, s_alt, ctx)
                    for s_alt in pattern.alternatives
                )
                for i_alt in definition.alternatives
            )

        return ctx.check_pair(instance.var.domain_pattern, name, compute)

    inst_key = _instance_key(instance)

    def compute() -> bool:
        return any(
            _child_instance(instance, alt, ctx) for alt in pattern.alternatives
        )

    if inst_key is None:
        return compute()
    return ctx.check_pair(inst_key, name, compute)


def _instance_key(instance: Instance) -> Optional[object]:
    """A hashable *structural* identity for memoization (never id():
    object addresses are reused after garbage collection)."""
    if isinstance(instance, (Tree, Ref)):
        return ("data", instance)
    return ("node", instance)


def _reference_instance(
    instance: Instance, source: PRefLeaf, ctx: InstantiationContext
) -> bool:
    target = source.target
    # Ground data reference.
    if isinstance(instance, Ref):
        if isinstance(target, NameTerm):
            resolved = ctx.resolve_source(target.functor)
            if resolved is None or ctx.store is None:
                return True
            referenced = ctx.store.get_optional(instance.target)
            if referenced is None:
                return True  # cannot check a dangling ref structurally

            def compute() -> bool:
                return any(
                    _child_instance(referenced, alt, ctx)
                    for alt in resolved.alternatives
                )

            return ctx.check_pair(("ref", instance.target), target.functor, compute)
        return True  # a pattern-variable reference matches any reference
    # Pattern-level reference leaf.
    if isinstance(instance, PRefLeaf):
        if isinstance(target, PatternVar):
            return True  # a pattern-variable reference matches any reference
        # target is a NameTerm; the instance target may be a NameTerm or
        # a binding pattern variable whose name designates a pattern of
        # the instance model (a rule body's `&Psup` reference).
        if isinstance(instance.target, NameTerm):
            inst_name = instance.target.functor
        else:
            inst_name = instance.target.name
        if inst_name == target.functor:
            return True
        inst_def = ctx.resolve_instance(inst_name)
        src_def = ctx.resolve_source(target.functor)
        if src_def is None:
            return True
        if inst_def is None:
            # Unknown instance-side pattern: accept optimistically.
            # "Typing in YAT is in no way constraining" (Section 3.5),
            # and customization must work with patterns referencing
            # names the system has no knowledge of (footnote 3).
            return True

        def compute() -> bool:
            return all(
                any(
                    _child_instance(i_alt, s_alt, ctx)
                    for s_alt in src_def.alternatives
                )
                for i_alt in inst_def.alternatives
            )

        return ctx.check_pair(inst_name, target.functor, compute)
    return False


def _label_of(instance: Union[PNode, Tree]) -> Union[Label, Var]:
    return instance.label


def _edges_of(instance: Union[PNode, Tree]) -> Sequence:
    # Data children are handled directly by the sequence matcher, which
    # treats each of them as a single plain-edge occurrence.
    if isinstance(instance, Tree):
        return instance.children
    return instance.edges


def _label_instance(
    instance_label: Union[Label, Var],
    source_label: Union[Label, Var],
    ctx: Optional[InstantiationContext] = None,
) -> bool:
    """Variable instantiation: "a variable can be instantiated either by
    a constant belonging to the variable's domain or by a variable whose
    domain is a subset". In lenient mode (composition compatibility),
    intersecting domains are enough."""
    lenient = ctx.lenient if ctx is not None else False
    if isinstance(source_label, Var):
        if isinstance(instance_label, Var):
            if lenient:
                return instance_label.domain.intersects(source_label.domain)
            return instance_label.domain.subset_of(source_label.domain)
        return source_label.domain.contains(instance_label)
    if isinstance(instance_label, Var):
        if lenient:
            return instance_label.domain.contains(source_label)
        return False  # a variable cannot instantiate a constant
    return instance_label == source_label


def _edges_instance(
    instance_edges: Sequence, source_edges: Sequence[PEdge], ctx: InstantiationContext
) -> bool:
    """Sequence matching of instance edges against source edges.

    A plain source edge consumes exactly one instance edge which must
    itself be plain; a ``*`` source edge consumes any run of instance
    edges of any kind. ``{}``/``[crit]``/index source edges behave like
    ``*`` for instantiation purposes (they also denote "zero or more").
    """
    n, m = len(instance_edges), len(source_edges)
    memo: Dict[Tuple[int, int], bool] = {}

    def target_of(item) -> Instance:
        # instance edges may be PEdge (pattern) or Tree/Ref children (data)
        if isinstance(item, PEdge):
            return item.target
        return item

    def kind_of(item) -> str:
        if isinstance(item, PEdge):
            return item.kind
        return ONE  # data children count as single occurrences

    def match(i: int, j: int) -> bool:
        key = (i, j)
        if key in memo:
            return memo[key]
        if j == m:
            result = i == n
        else:
            edge = source_edges[j]
            if edge.kind == ONE:
                result = (
                    i < n
                    and kind_of(instance_edges[i]) == ONE
                    and _child_instance(target_of(instance_edges[i]), edge.target, ctx)
                    and match(i + 1, j + 1)
                )
            else:
                # star-like: try consuming 0..k instance edges
                result = match(i, j + 1)
                k = i
                while not result and k < n:
                    if not _child_instance(
                        target_of(instance_edges[k]), edge.target, ctx
                    ):
                        break
                    k += 1
                    result = match(k, j + 1)
        memo[key] = result
        return result

    return match(0, 0)


# ---------------------------------------------------------------------------
# Model-level instantiation
# ---------------------------------------------------------------------------


def model_is_instance(
    instance_model,
    source_model,
    store: Optional[DataStore] = None,
    lenient: bool = False,
) -> bool:
    """True if every pattern of *instance_model* instantiates some pattern
    of *source_model* (the paper's model-instantiation condition)."""
    ctx = InstantiationContext(source_model, instance_model, store, lenient=lenient)
    source_patterns = list(_patterns_of(source_model))
    for pattern in _patterns_of(instance_model):
        if not any(is_instance(pattern, source, ctx) for source in source_patterns):
            return False
    return True


def check_model_instance(instance_model, source_model) -> None:
    if not model_is_instance(instance_model, source_model):
        raise InstantiationError(
            f"{instance_model!r} is not an instance of {source_model!r}"
        )


def _patterns_of(model):
    if isinstance(model, dict):
        return list(model.values())
    getter = getattr(model, "patterns", None)
    if getter is None:
        raise ModelError(f"not a model: {model!r}")
    result = getter() if callable(getter) else getter
    return list(result)


def tree_is_instance(
    node: Union[Tree, Ref],
    source: Union[PChild, Pattern],
    model=None,
    store: Optional[DataStore] = None,
) -> bool:
    """Check a ground data tree against a pattern (with optional model
    for resolving pattern names and store for following references)."""
    ctx = InstantiationContext(source_model=model, store=store)
    return is_instance(node, source, ctx)
