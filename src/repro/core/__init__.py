"""The YAT data model: trees, patterns, variables, models, instantiation.

This package implements Section 2 of the paper. The most useful entry
points are re-exported here::

    from repro.core import tree, atom, sym, DataStore         # ground data
    from repro.core import pnode, var, Pattern, Model         # patterns
    from repro.core import is_instance, model_is_instance     # instantiation
    from repro.core import parse_pattern_tree, parse_model    # textual syntax
"""

from .labels import Atom, Label, Symbol, atom_type_name, is_atom, is_symbol, label_repr
from .variables import (
    ANY,
    ATOMIC,
    BOOL,
    FLOAT,
    INT,
    STRING,
    SYMBOL,
    AnyDomain,
    AtomTypeDomain,
    Domain,
    EnumDomain,
    PatternVar,
    SymbolDomain,
    UnionDomain,
    Var,
    domain_by_name,
    enum,
    union_domain,
)
from .trees import DataStore, Ref, Tree, atom, render_tree, sym, tree
from .patterns import (
    GROUP,
    INDEX,
    ONE,
    ORDER,
    STAR,
    NameTerm,
    Pattern,
    PChild,
    PEdge,
    PNameLeaf,
    PNode,
    PRefLeaf,
    PVarLeaf,
    collect_name_terms,
    collect_variables,
    edge_group,
    edge_index,
    edge_one,
    edge_order,
    edge_star,
    is_ground,
    name_leaf,
    pnode,
    pvar,
    ref_leaf,
    ref_var,
    rename_variables,
    render_pattern_tree,
    var,
    walk,
    walk_edges,
)
from .instantiation import (
    InstantiationContext,
    check_instance,
    check_model_instance,
    is_instance,
    model_is_instance,
    pattern_to_tree,
    tree_is_instance,
    tree_to_pattern,
)
from .models import (
    BUILTIN_MODELS,
    Model,
    builtin_model,
    car_schema_model,
    html_model,
    odmg_model,
    relational_model,
    sgml_model,
    yat_model,
)
from .syntax import (
    Token,
    TokenStream,
    parse_model,
    parse_pattern,
    parse_pattern_tree,
    resolve_pattern_names,
    tokenize,
)

__all__ = [name for name in dir() if not name.startswith("_")]
