"""Ground YAT data: named, ordered, labeled trees with references.

Ground patterns — patterns with no variables, no unions and only plain
edges — "are used to represent real data, like in usual semistructured
data models" (Section 2). We give them a dedicated, immutable,
hashable representation, because the rule interpreter manipulates large
numbers of them and grouping edges rely on structural equality.

A :class:`DataStore` is the paper's "set of ground patterns ... each
output pattern is associated to its name": a mapping from names (``b1``,
``s1``...) to trees, with :class:`Ref` leaves (``&s1``) pointing across
the store. Cycles between trees are allowed (car c1 ↔ supplier s1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import DanglingReferenceError
from .labels import Label, Symbol, is_label, label_repr

Child = Union["Tree", "Ref"]


class Ref:
    """A reference leaf ``&name`` pointing to a named tree in a store."""

    __slots__ = ("target", "_hash")

    def __init__(self, target: str) -> None:
        if not isinstance(target, str) or not target:
            raise TypeError(f"reference target must be a non-empty string: {target!r}")
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "_hash", hash((Ref, target)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Ref is immutable")

    def __reduce__(self):
        # Slots + the immutability guard break default unpickling;
        # rebuild through the constructor (needed to ship trees to the
        # worker processes of repro.parallel).
        return (Ref, (self.target,))

    def __repr__(self) -> str:
        return f"Ref({self.target!r})"

    def __str__(self) -> str:
        return f"&{self.target}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ref) and other.target == self.target

    def __hash__(self) -> int:
        return self._hash


class Tree:
    """An immutable ordered labeled tree node.

    ``label`` is a constant (symbol or atom); ``children`` is an ordered
    tuple of subtrees and references. Structural equality and hashing
    are precomputed bottom-up, so using trees as dict keys (Skolem
    arguments, grouping keys) is O(1) after construction.
    """

    __slots__ = ("label", "children", "_hash")

    def __init__(self, label: Label, children: Iterable[Child] = ()) -> None:
        if not is_label(label):
            raise TypeError(f"invalid tree label: {label!r}")
        kids = tuple(children)
        for child in kids:
            if not isinstance(child, (Tree, Ref)):
                raise TypeError(f"invalid tree child: {child!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "children", kids)
        object.__setattr__(self, "_hash", hash((Tree, label, kids)))

    @classmethod
    def _make(cls, label: Label, children: Tuple[Child, ...] = ()) -> "Tree":
        """Trusted constructor for hot paths: *children* must already be
        a tuple of ``Tree``/``Ref`` nodes and *label* a valid label —
        skips the validation ``__init__`` performs on foreign input."""
        node = object.__new__(cls)
        object.__setattr__(node, "label", label)
        object.__setattr__(node, "children", children)
        object.__setattr__(node, "_hash", hash((Tree, label, children)))
        return node

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Tree is immutable")

    def __reduce__(self):
        # See Ref.__reduce__: reconstruct through __init__ so the
        # immutability guard and precomputed hash survive pickling.
        return (Tree, (self.label, self.children))

    # -- inspection ---------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def root_signature(self) -> Tuple[Label, int]:
        """``(label, child count)`` — the cheap key rule-dispatch
        indexing tests before attempting a full body match."""
        return (self.label, len(self.children))

    def child(self, index: int) -> Child:
        return self.children[index]

    def subtrees(self) -> Iterator["Tree"]:
        """Yield this node and every descendant tree node, preorder."""
        stack: List[Child] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Tree):
                yield node
                stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of nodes (tree nodes and reference leaves)."""
        total = 0
        stack: List[Child] = [self]
        while stack:
            node = stack.pop()
            total += 1
            if isinstance(node, Tree):
                stack.extend(node.children)
        return total

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        best = 0
        stack: List[Tuple[Child, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            best = max(best, level)
            if isinstance(node, Tree):
                for child in node.children:
                    stack.append((child, level + 1))
        return best

    def find(self, label: Label) -> Optional["Tree"]:
        """First descendant (preorder) whose label equals *label*."""
        for node in self.subtrees():
            if node.label == label:
                return node
        return None

    def find_all(self, label: Label) -> List["Tree"]:
        """All descendants (preorder) whose label equals *label*."""
        return [node for node in self.subtrees() if node.label == label]

    def references(self) -> List[Ref]:
        """All reference leaves in this tree, preorder."""
        refs: List[Ref] = []
        stack: List[Child] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Ref):
                refs.append(node)
            else:
                stack.extend(reversed(node.children))
        return refs

    # -- transformation -----------------------------------------------------

    def with_children(self, children: Iterable[Child]) -> "Tree":
        return Tree(self.label, children)

    def map_refs(self, fn: Callable[[Ref], Child]) -> "Tree":
        """Rebuild the tree, replacing every reference leaf by ``fn(ref)``."""
        new_children: List[Child] = []
        changed = False
        for child in self.children:
            if isinstance(child, Ref):
                replacement = fn(child)
                changed = changed or replacement is not child
                new_children.append(replacement)
            else:
                replacement = child.map_refs(fn)
                changed = changed or replacement is not child
                new_children.append(replacement)
        if not changed:
            return self
        return Tree(self.label, new_children)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Tree)
            and other._hash == self._hash
            and other.label == self.label
            and other.children == self.children
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"Tree({self.label!r})"
        return f"Tree({self.label!r}, {list(self.children)!r})"

    def __str__(self) -> str:
        return render_tree(self)


def tree(label: Union[Label, str], *children: Union[Child, Label]) -> Tree:
    """Convenience constructor in the spirit of the paper's syntax.

    Plain strings used as *labels* become symbols; to build a string
    *atom* label pass it via :func:`atom`. Children may be trees, refs
    or constants (auto-wrapped into leaves)::

        tree("class", tree("supplier",
             tree("name", atom("VW center")),
             tree("city", atom("Paris"))))
    """
    if isinstance(label, str):
        label = Symbol(label)
    wrapped: List[Child] = []
    for child in children:
        if isinstance(child, (Tree, Ref)):
            wrapped.append(child)
        elif is_label(child):
            wrapped.append(Tree(child))
        else:
            raise TypeError(f"invalid child for tree(): {child!r}")
    return Tree(label, wrapped)


def atom(value: Label) -> Tree:
    """A leaf carrying an atomic value (``atom("Golf")``, ``atom(1995)``)."""
    return Tree(value)


def sym(name: str) -> Symbol:
    """Shorthand for :class:`Symbol`."""
    return Symbol(name)


def render_tree(node: Child, indent: int = 0, step: int = 2) -> str:
    """Render a ground tree in YAT textual syntax.

    Single-child chains print on one line (``class -> car``), multiple
    children are bracketed and indented.
    """
    pad = " " * indent
    if isinstance(node, Ref):
        return f"{pad}&{node.target}"
    parts = [pad, label_repr(node.label)]
    current = node
    while len(current.children) == 1 and isinstance(current.children[0], Tree):
        current = current.children[0]
        parts.append(" -> ")
        parts.append(label_repr(current.label))
    if len(current.children) == 1:  # a single Ref child
        parts.append(" -> ")
        parts.append(str(current.children[0]))
    elif current.children:
        parts.append(" <\n")
        lines = [
            render_tree(child, indent + step, step) for child in current.children
        ]
        parts.append(",\n".join(lines))
        parts.append(f"\n{pad}>")
    return "".join(parts)


class DataStore:
    """A set of named ground trees — the input or output of a program.

    Preserves insertion order (document order matters for ordered
    collections). Supports reference resolution and full
    materialization (splicing referenced trees in place of ``&`` leaves,
    with cycle protection).
    """

    def __init__(self, items: Optional[Dict[str, Tree]] = None) -> None:
        self._trees: Dict[str, Tree] = {}
        if items:
            for name, node in items.items():
                self.add(name, node)

    # -- mutation -----------------------------------------------------------

    def add(self, name: str, node: Tree) -> None:
        if not isinstance(node, Tree):
            raise TypeError(f"store values must be trees, got {node!r}")
        self._trees[name] = node

    def remove(self, name: str) -> None:
        del self._trees[name]

    # -- access -------------------------------------------------------------

    def get(self, name: str) -> Tree:
        try:
            return self._trees[name]
        except KeyError:
            raise DanglingReferenceError(f"no tree named {name!r} in store") from None

    def get_optional(self, name: str) -> Optional[Tree]:
        return self._trees.get(name)

    def resolve(self, ref: Ref) -> Tree:
        return self.get(ref.target)

    def names(self) -> List[str]:
        return list(self._trees)

    def trees(self) -> List[Tree]:
        return list(self._trees.values())

    def items(self) -> List[Tuple[str, Tree]]:
        return list(self._trees.items())

    def __contains__(self, name: str) -> bool:
        return name in self._trees

    def __len__(self) -> int:
        return len(self._trees)

    def __iter__(self) -> Iterator[Tuple[str, Tree]]:
        return iter(self._trees.items())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataStore) and dict(other._trees) == dict(self._trees)

    def __repr__(self) -> str:
        return f"DataStore({len(self._trees)} trees: {', '.join(self._trees)})"

    # -- integrity ----------------------------------------------------------

    def dangling_references(self) -> List[str]:
        """Names referenced by some ``&`` leaf but absent from the store."""
        missing = []
        for node in self._trees.values():
            for ref in node.references():
                if ref.target not in self._trees:
                    missing.append(ref.target)
        return missing

    def check(self) -> None:
        """Raise :class:`DanglingReferenceError` if any reference dangles."""
        missing = self.dangling_references()
        if missing:
            raise DanglingReferenceError(
                f"dangling references: {', '.join(sorted(set(missing)))}"
            )

    # -- materialization ----------------------------------------------------

    def materialize(self, name: str) -> Tree:
        """Return the named tree with all references recursively spliced in.

        Dereferencing a cyclic structure would not terminate, so a
        reference back to a tree currently being expanded is left as a
        :class:`Ref` leaf.
        """
        return self._materialize(self.get(name), frozenset({name}))

    def _materialize(self, node: Tree, expanding: frozenset) -> Tree:
        def splice(ref: Ref) -> Child:
            if ref.target in expanding or ref.target not in self._trees:
                return ref
            target = self.get(ref.target)
            return self._materialize(target, expanding | {ref.target})

        return node.map_refs(splice)

    def copy(self) -> "DataStore":
        return DataStore(dict(self._trees))
