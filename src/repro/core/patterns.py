"""Patterns and pattern trees of the YAT model (Section 2).

A *pattern* is identified by a name and defined by a union of *pattern
trees*. A pattern tree is an ordered tree whose nodes are labeled with
data variables or constants; leaves may additionally be labeled with

* pattern names (``Ptype``) — dereferencing, i.e. the leaf will be
  instantiated by a pattern tree (deeply recursive structures);
* references to pattern names (``&Pclass``) — object-style references
  allowing sharing and cyclic structures;
* pattern variables (``P2 : Ptype``) — standing for whole subtrees.

Edges carry *indicators of occurrence*. The paper's body/model
indicators are the empty indicator (exactly one occurrence) and ``*``
(zero or more). Rule heads add the collection-building indicators of
Section 3.3: ``{}`` (grouping with duplicate elimination, no order) and
``[crit]`` (grouping plus ordering on a criterion), and Rule 5 uses
*index edges* ``(I)`` that bind the position of a child.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import ModelError
from .labels import Label, Symbol, is_label, label_repr
from .variables import ANY, Domain, PatternVar, Var

# ---------------------------------------------------------------------------
# Edge kinds
# ---------------------------------------------------------------------------

ONE = "one"  # empty indicator: exactly one occurrence
STAR = "star"  # '*': zero or more occurrences / implicit grouping (head)
GROUP = "group"  # '{}': grouping with duplicate elimination (head only)
ORDER = "order"  # '[crit]': grouping + ordering on criteria (head only)
INDEX = "index"  # '(I)': star edge binding each child's position

EDGE_KINDS = (ONE, STAR, GROUP, ORDER, INDEX)

# ---------------------------------------------------------------------------
# Name terms (pattern names, possibly parameterized by Skolem arguments)
# ---------------------------------------------------------------------------


class NameTerm:
    """A pattern-name occurrence, e.g. ``Psup``, ``Psup(SN)``, ``Pcar(Pbr)``.

    Parameterized names are the paper's explicit Skolem functions: the
    functor is global to a program and the arguments are data or pattern
    variables — or constants, which program instantiation (Section 4.1)
    produces by folding arguments that specialize to known values. A
    :class:`NameTerm` with no arguments denotes the plain pattern name
    used at the model level.
    """

    __slots__ = ("functor", "args")

    def __init__(
        self, functor: str, args: Sequence[Union[Var, PatternVar, Label]] = ()
    ) -> None:
        if not functor or not functor[0].isupper():
            raise ModelError(
                f"pattern names start with an uppercase letter: {functor!r}"
            )
        self.functor = functor
        self.args = tuple(args)

    def variables(self) -> List[Union[Var, PatternVar]]:
        return [a for a in self.args if isinstance(a, (Var, PatternVar))]

    def __repr__(self) -> str:
        return f"NameTerm({self.functor!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.functor
        rendered = [
            str(a) if isinstance(a, (Var, PatternVar)) else label_repr(a)
            for a in self.args
        ]
        return f"{self.functor}({', '.join(rendered)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NameTerm)
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash((NameTerm, self.functor, self.args))


# ---------------------------------------------------------------------------
# Pattern tree nodes
# ---------------------------------------------------------------------------

PChild = Union["PNode", "PNameLeaf", "PRefLeaf", "PVarLeaf"]


class PEdge:
    """An edge of a pattern tree, carrying an occurrence indicator."""

    __slots__ = ("kind", "target", "criteria", "index_var")

    def __init__(
        self,
        kind: str,
        target: PChild,
        criteria: Sequence[Var] = (),
        index_var: Optional[Var] = None,
    ) -> None:
        if kind not in EDGE_KINDS:
            raise ModelError(f"unknown edge kind {kind!r}")
        if kind == ORDER and not criteria:
            raise ModelError("an ordering edge needs at least one criterion")
        if kind == INDEX and index_var is None:
            raise ModelError("an index edge needs an index variable")
        if kind != ORDER and criteria:
            raise ModelError("criteria are only allowed on ordering edges")
        if kind != INDEX and index_var is not None:
            raise ModelError("an index variable is only allowed on index edges")
        self.kind = kind
        self.target = target
        self.criteria = tuple(criteria)
        self.index_var = index_var

    def with_target(self, target: PChild) -> "PEdge":
        return PEdge(self.kind, target, self.criteria, self.index_var)

    def indicator(self) -> str:
        """The edge indicator in textual syntax (``->``, ``*->``, ...)."""
        if self.kind == ONE:
            return "->"
        if self.kind == STAR:
            return "*->"
        if self.kind == GROUP:
            return "{}->"
        if self.kind == ORDER:
            return "[" + ",".join(var.name for var in self.criteria) + "]->"
        return f"({self.index_var.name})->"

    def __repr__(self) -> str:
        return f"PEdge({self.indicator()!r}, {self.target!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PEdge)
            and other.kind == self.kind
            and other.criteria == self.criteria
            and other.index_var == self.index_var
            and other.target == self.target
        )

    def __hash__(self) -> int:
        return hash((PEdge, self.kind, self.criteria, self.index_var, self.target))


class PNode:
    """An internal (or constant leaf) pattern-tree node.

    The label is a constant or a data variable; children hang off
    :class:`PEdge` objects.
    """

    __slots__ = ("label", "edges")

    def __init__(self, label: Union[Label, Var], edges: Sequence[PEdge] = ()) -> None:
        if not (is_label(label) or isinstance(label, Var)):
            raise ModelError(f"invalid pattern node label: {label!r}")
        self.label = label
        self.edges = tuple(edges)

    @property
    def is_leaf(self) -> bool:
        return not self.edges

    def with_edges(self, edges: Sequence[PEdge]) -> "PNode":
        return PNode(self.label, edges)

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"PNode({self.label!r})"
        return f"PNode({self.label!r}, {list(self.edges)!r})"

    def __str__(self) -> str:
        return render_pattern_tree(self)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PNode)
            and other.label == self.label
            and other.edges == self.edges
        )

    def __hash__(self) -> int:
        return hash((PNode, self.label, self.edges))


class PNameLeaf:
    """A leaf labeled with a pattern name — dereferencing.

    At the model level this expresses deep recursion (``Ptype`` inside
    ``Ptype``); in a rule head ``Psup(SN)`` splices the value associated
    to the Skolem term in place of the leaf.
    """

    __slots__ = ("term",)

    def __init__(self, term: NameTerm) -> None:
        self.term = term

    def __repr__(self) -> str:
        return f"PNameLeaf({self.term!r})"

    def __str__(self) -> str:
        return str(self.term)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PNameLeaf) and other.term == self.term

    def __hash__(self) -> int:
        return hash((PNameLeaf, self.term))


class PRefLeaf:
    """A leaf holding a reference (``&``) to a pattern name or variable.

    ``&Psup(SN)`` in a head creates a reference to the Skolem-identified
    value; ``&Pobj`` in a body matches a reference node and binds the
    pattern variable to the *referenced* tree.
    """

    __slots__ = ("target",)

    def __init__(self, target: Union[NameTerm, PatternVar]) -> None:
        self.target = target

    def __repr__(self) -> str:
        return f"PRefLeaf({self.target!r})"

    def __str__(self) -> str:
        return f"&{self.target}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PRefLeaf) and other.target == self.target

    def __hash__(self) -> int:
        return hash((PRefLeaf, self.target))


class PVarLeaf:
    """A leaf holding a pattern variable, e.g. ``Data`` or ``P2 : Ptype``."""

    __slots__ = ("var",)

    def __init__(self, var: PatternVar) -> None:
        self.var = var

    def __repr__(self) -> str:
        return f"PVarLeaf({self.var!r})"

    def __str__(self) -> str:
        return str(self.var)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PVarLeaf) and other.var == self.var

    def __hash__(self) -> int:
        return hash((PVarLeaf, self.var))


# ---------------------------------------------------------------------------
# Pattern (model level): a named union of pattern trees
# ---------------------------------------------------------------------------


class Pattern:
    """A named pattern: a union of pattern trees (Section 2).

    A pattern whose value is a single tree, contains no variable and
    whose edges are all plain is *ground* — it can only be instantiated
    by itself and represents real data.
    """

    __slots__ = ("name", "alternatives")

    def __init__(self, name: str, alternatives: Sequence[PChild]) -> None:
        if not alternatives:
            raise ModelError(f"pattern {name!r} needs at least one alternative")
        if not name or not name[0].isupper():
            raise ModelError(
                f"pattern names start with an uppercase letter: {name!r}"
            )
        self.name = name
        self.alternatives = tuple(alternatives)

    @property
    def is_union(self) -> bool:
        return len(self.alternatives) > 1

    def is_ground(self) -> bool:
        if self.is_union:
            return False
        return _is_ground_child(self.alternatives[0])

    def variables(self) -> Set[Union[Var, PatternVar]]:
        found: Set[Union[Var, PatternVar]] = set()
        for alt in self.alternatives:
            found |= collect_variables(alt)
        return found

    def referenced_names(self) -> Set[str]:
        """Pattern names this pattern mentions (deref or ref leaves)."""
        names: Set[str] = set()
        for alt in self.alternatives:
            for child in walk(alt):
                if isinstance(child, PNameLeaf):
                    names.add(child.term.functor)
                elif isinstance(child, PRefLeaf) and isinstance(
                    child.target, NameTerm
                ):
                    names.add(child.target.functor)
                elif isinstance(child, PVarLeaf) and child.var.domain_pattern:
                    names.add(child.var.domain_pattern)
        return names

    def __repr__(self) -> str:
        return f"Pattern({self.name!r}, {len(self.alternatives)} alternative(s))"

    def __str__(self) -> str:
        body = "\n | ".join(render_pattern_tree(alt) for alt in self.alternatives)
        return f"{self.name} : {body}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pattern)
            and other.name == self.name
            and other.alternatives == self.alternatives
        )

    def __hash__(self) -> int:
        return hash((Pattern, self.name, self.alternatives))


# ---------------------------------------------------------------------------
# Traversal and analysis helpers
# ---------------------------------------------------------------------------


def walk(node: PChild) -> Iterator[PChild]:
    """Yield *node* and all its descendants, preorder."""
    stack: List[PChild] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, PNode):
            for edge in reversed(current.edges):
                stack.append(edge.target)


def walk_edges(node: PChild) -> Iterator[PEdge]:
    """Yield every edge of the pattern tree rooted at *node*, preorder."""
    for current in walk(node):
        if isinstance(current, PNode):
            yield from current.edges


def collect_variables(node: PChild) -> Set[Union[Var, PatternVar]]:
    """All data and pattern variables occurring in the tree (labels,
    edge criteria, index variables, name-term arguments, leaves)."""
    found: Set[Union[Var, PatternVar]] = set()
    for current in walk(node):
        if isinstance(current, PNode):
            if isinstance(current.label, Var):
                found.add(current.label)
            for edge in current.edges:
                found.update(edge.criteria)
                if edge.index_var is not None:
                    found.add(edge.index_var)
        elif isinstance(current, PVarLeaf):
            found.add(current.var)
        elif isinstance(current, PNameLeaf):
            found.update(current.term.variables())
        elif isinstance(current, PRefLeaf):
            if isinstance(current.target, NameTerm):
                found.update(current.target.variables())
            else:
                found.add(current.target)
    return found


def collect_name_terms(node: PChild) -> List[Tuple[NameTerm, bool]]:
    """All name-term occurrences as ``(term, is_reference)`` pairs."""
    terms: List[Tuple[NameTerm, bool]] = []
    for current in walk(node):
        if isinstance(current, PNameLeaf):
            terms.append((current.term, False))
        elif isinstance(current, PRefLeaf) and isinstance(current.target, NameTerm):
            terms.append((current.target, True))
    return terms


def _is_ground_child(node: PChild) -> bool:
    for current in walk(node):
        if isinstance(current, (PVarLeaf, PNameLeaf, PRefLeaf)):
            # references to *names* are allowed in ground data (e.g. &s1);
            # only variable targets make the pattern non-ground.
            if isinstance(current, PRefLeaf) and isinstance(
                current.target, NameTerm
            ):
                if current.target.args:
                    return False
                continue
            return False
        if isinstance(current.label, Var):
            return False
        for edge in current.edges:
            if edge.kind != ONE:
                return False
    return True


def is_ground(node: PChild) -> bool:
    """True if the pattern tree contains no variable, union or non-plain
    edge — i.e. it denotes a single data tree."""
    return _is_ground_child(node)


def rename_variables(node: PChild, mapping: Dict[str, str]) -> PChild:
    """Rebuild the tree with variables renamed according to *mapping*.

    Used by program instantiation (Section 4.1), where merging several
    rules requires "appropriate renaming of variables ... to avoid
    conflicts". Variables absent from the mapping are kept.
    """

    def rename_var(var: Var) -> Var:
        new_name = mapping.get(var.name)
        return Var(new_name, var.domain) if new_name else var

    def rename_pvar(pvar: PatternVar) -> PatternVar:
        new_name = mapping.get(pvar.name)
        return PatternVar(new_name, pvar.domain_pattern) if new_name else pvar

    def rename_term(term: NameTerm) -> NameTerm:
        new_args = []
        for arg in term.args:
            if isinstance(arg, Var):
                new_args.append(rename_var(arg))
            elif isinstance(arg, PatternVar):
                new_args.append(rename_pvar(arg))
            else:
                new_args.append(arg)  # constant argument
        return NameTerm(term.functor, new_args)

    def rec(current: PChild) -> PChild:
        if isinstance(current, PNode):
            label = (
                rename_var(current.label)
                if isinstance(current.label, Var)
                else current.label
            )
            edges = []
            for edge in current.edges:
                criteria = tuple(rename_var(c) for c in edge.criteria)
                index_var = (
                    rename_var(edge.index_var) if edge.index_var is not None else None
                )
                edges.append(PEdge(edge.kind, rec(edge.target), criteria, index_var))
            return PNode(label, edges)
        if isinstance(current, PVarLeaf):
            return PVarLeaf(rename_pvar(current.var))
        if isinstance(current, PNameLeaf):
            return PNameLeaf(rename_term(current.term))
        if isinstance(current, PRefLeaf):
            if isinstance(current.target, NameTerm):
                return PRefLeaf(rename_term(current.target))
            return PRefLeaf(rename_pvar(current.target))
        raise ModelError(f"unknown pattern node: {current!r}")

    return rec(node)


# ---------------------------------------------------------------------------
# Construction helpers (programmatic builder API)
# ---------------------------------------------------------------------------


def pnode(label: Union[Label, Var, str], *edges: Union[PEdge, PChild]) -> PNode:
    """Build a pattern node; bare strings become symbols and bare
    children get a plain edge::

        pnode("class", pnode("supplier",
              edge_one(pnode("name", var("SN")))))
    """
    if isinstance(label, str):
        label = Symbol(label)
    built: List[PEdge] = []
    for item in edges:
        if isinstance(item, PEdge):
            built.append(item)
        else:
            built.append(PEdge(ONE, item))
    return PNode(label, built)


def var(name: str, domain: Domain = ANY) -> PNode:
    """A leaf labeled with a data variable."""
    return PNode(Var(name, domain))


def pvar(name: str, domain_pattern: Optional[str] = None) -> PVarLeaf:
    """A pattern-variable leaf (``P2 : Ptype``)."""
    return PVarLeaf(PatternVar(name, domain_pattern))


def name_leaf(functor: str, *args: Union[Var, PatternVar, str]) -> PNameLeaf:
    """A dereferencing pattern-name leaf (``Psup(SN)``).

    Bare strings in *args* are interpreted as data variable names.
    """
    return PNameLeaf(NameTerm(functor, _coerce_args(args)))


def ref_leaf(functor: str, *args: Union[Var, PatternVar, str]) -> PRefLeaf:
    """A reference leaf (``&Psup(SN)``)."""
    return PRefLeaf(NameTerm(functor, _coerce_args(args)))


def ref_var(name: str, domain_pattern: Optional[str] = None) -> PRefLeaf:
    """A reference leaf targeting a pattern variable (``&Pobj``)."""
    return PRefLeaf(PatternVar(name, domain_pattern))


def _coerce_args(args: Sequence[Union[Var, PatternVar, str]]) -> List[
    Union[Var, PatternVar]
]:
    coerced: List[Union[Var, PatternVar]] = []
    for item in args:
        if isinstance(item, str):
            coerced.append(Var(item))
        else:
            coerced.append(item)
    return coerced


def edge_one(target: PChild) -> PEdge:
    """A plain edge: exactly one occurrence."""
    return PEdge(ONE, target)


def edge_star(target: PChild) -> PEdge:
    """A ``*`` edge: zero or more occurrences / implicit grouping."""
    return PEdge(STAR, target)


def edge_group(target: PChild) -> PEdge:
    """A ``{}`` edge: grouping with duplicate elimination (head only)."""
    return PEdge(GROUP, target)


def edge_order(target: PChild, *criteria: Union[Var, str]) -> PEdge:
    """An ``[crit]`` edge: grouping + ordering on criteria (head only)."""
    crits = [Var(c) if isinstance(c, str) else c for c in criteria]
    return PEdge(ORDER, target, criteria=crits)


def edge_index(target: PChild, index: Union[Var, str]) -> PEdge:
    """An index edge ``(I)`` binding each child's position (Rule 5)."""
    idx = Var(index) if isinstance(index, str) else index
    return PEdge(INDEX, target, index_var=idx)


# ---------------------------------------------------------------------------
# Rendering (textual syntax)
# ---------------------------------------------------------------------------


def render_pattern_tree(node: PChild, indent: int = 0, step: int = 2) -> str:
    """Render a pattern tree in YAT textual syntax."""
    pad = " " * indent
    if isinstance(node, PVarLeaf):
        # the explicit ^ keeps untyped pattern variables re-parseable
        return pad + "^" + str(node.var)
    if isinstance(node, PNameLeaf):
        return pad + str(node.term)
    if isinstance(node, PRefLeaf):
        return pad + "&" + str(node.target)
    # PNode
    label = node.label
    head = str(label) if isinstance(label, Var) else label_repr(label)
    if not node.edges:
        return pad + head
    if len(node.edges) == 1:
        edge = node.edges[0]
        target = render_pattern_tree(edge.target, 0, step)
        return f"{pad}{head} {edge.indicator()} {target}"
    lines = []
    for edge in node.edges:
        target = render_pattern_tree(edge.target, indent + step, step).lstrip()
        lines.append(f"{' ' * (indent + step)}{edge.indicator()} {target}")
    return f"{pad}{head} <\n" + ",\n".join(lines) + f"\n{pad}>"
