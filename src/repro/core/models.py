"""Models: named collections of patterns, and the built-in model tower.

Figure 2 of the paper shows four levels of representation: the most
general ``Yat`` model (captures any data), an ``ODMG`` model (instance of
Yat), a specific ``Car Schema`` model (instance of both) and the ground
``Golf`` database. This module provides the :class:`Model` container and
factories for the reusable levels: :func:`yat_model`, :func:`odmg_model`,
:func:`relational_model`, :func:`sgml_model` and :func:`html_model` — the
formats the YAT prototype shipped wrappers for (Section 5.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import ModelError
from .instantiation import model_is_instance
from .patterns import (
    NameTerm,
    Pattern,
    PChild,
    PNameLeaf,
    edge_one,
    edge_star,
    name_leaf,
    pnode,
    pvar,
    ref_leaf,
    var,
)
from .variables import ANY, ATOMIC, SYMBOL, Var, enum


class Model:
    """A named set of patterns with their variable domains.

    Domains are carried by the variables inside the patterns, so the
    model itself is just an ordered, name-indexed pattern collection.
    """

    def __init__(self, name: str, patterns: Iterable[Pattern] = ()) -> None:
        self.name = name
        self._patterns: Dict[str, Pattern] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: Pattern) -> None:
        if pattern.name in self._patterns:
            raise ModelError(
                f"model {self.name!r} already defines pattern {pattern.name!r}"
            )
        self._patterns[pattern.name] = pattern

    def get_pattern(self, name: str) -> Optional[Pattern]:
        return self._patterns.get(name)

    def pattern(self, name: str) -> Pattern:
        found = self._patterns.get(name)
        if found is None:
            raise ModelError(f"model {self.name!r} has no pattern {name!r}")
        return found

    def patterns(self) -> List[Pattern]:
        return list(self._patterns.values())

    def pattern_names(self) -> List[str]:
        return list(self._patterns)

    def is_instance_of(self, other: "Model") -> bool:
        """Model instantiation check: every pattern here must instantiate
        some pattern of *other* (Section 2)."""
        return model_is_instance(self, other)

    def merged_with(self, other: "Model", name: Optional[str] = None) -> "Model":
        """Union of two models (used when combining programs)."""
        merged = Model(name or f"{self.name}+{other.name}")
        for pattern in self.patterns():
            merged.add(pattern)
        for pattern in other.patterns():
            if merged.get_pattern(pattern.name) is None:
                merged.add(pattern)
            elif merged.get_pattern(pattern.name) != pattern:
                raise ModelError(
                    f"models {self.name!r} and {other.name!r} disagree on "
                    f"pattern {pattern.name!r}"
                )
        return merged

    def __contains__(self, name: str) -> bool:
        return name in self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns.values())

    def __repr__(self) -> str:
        return f"Model({self.name!r}, patterns=[{', '.join(self._patterns)}])"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Model)
            and other.name == self.name
            and other._patterns == self._patterns
        )


# ---------------------------------------------------------------------------
# The Yat model — captures any data (top left of Figure 2).
# ---------------------------------------------------------------------------


def yat_model() -> Model:
    """The most general model: ``Yat : L`` | ``L *-> Yat`` | ``&Yat``.

    Any node label (variable ``L`` over the default domain), any number
    of children which are themselves Yat, or a reference.
    """
    yat = Pattern(
        "Yat",
        [
            var("L"),
            pnode(Var("L"), edge_star(name_leaf("Yat"))),
            ref_leaf("Yat"),
        ],
    )
    return Model("Yat", [yat])


# ---------------------------------------------------------------------------
# The ODMG model (top right of Figure 2).
# ---------------------------------------------------------------------------


def odmg_model() -> Model:
    """ODMG-compliant data: classes with named attributes whose values
    are atoms, collections (set/bag/list/array), tuples (structs) or
    references to class objects."""
    pclass = Pattern(
        "Pclass",
        [
            pnode(
                "class",
                edge_one(
                    pnode(
                        Var("Class_name", SYMBOL),
                        edge_star(pnode(Var("Att", SYMBOL), edge_one(name_leaf("Ptype")))),
                    )
                ),
            )
        ],
    )
    ptype = Pattern(
        "Ptype",
        [
            var("Y", ATOMIC),
            pnode(Var("X", enum("set", "bag", "list", "array")),
                  edge_star(name_leaf("Ptype"))),
            pnode("tuple",
                  edge_star(pnode(Var("Field", SYMBOL), edge_one(name_leaf("Ptype"))))),
            ref_leaf("Pclass"),
        ],
    )
    return Model("ODMG", [pclass, ptype])


# ---------------------------------------------------------------------------
# The relational model (Section 3.2).
# ---------------------------------------------------------------------------


def relational_model() -> Model:
    """Relational data seen through the wrapper: a table is a node named
    after the relation with one ``row`` child per tuple, each row having
    one attribute child per column holding an atomic value."""
    ptable = Pattern(
        "Ptable",
        [
            pnode(
                Var("Table_name", SYMBOL),
                edge_star(
                    pnode(
                        "row",
                        edge_star(pnode(Var("Column", SYMBOL),
                                        edge_one(var("V", ATOMIC)))),
                    )
                ),
            )
        ],
    )
    return Model("Relational", [ptable])


# ---------------------------------------------------------------------------
# The SGML model (Section 3.1).
# ---------------------------------------------------------------------------


def sgml_model() -> Model:
    """Generic SGML documents: an element is a node labeled with the tag
    symbol whose children are elements or PCDATA leaves."""
    pelement = Pattern(
        "Pelement",
        [
            pnode(Var("Tag", SYMBOL), edge_star(name_leaf("Pelement"))),
            var("Pcdata", ATOMIC),
        ],
    )
    return Model("SGML", [pelement])


# ---------------------------------------------------------------------------
# The HTML model (Figure 5).
# ---------------------------------------------------------------------------


def html_model() -> Model:
    """HTML pages as produced by the O2Web-style program of Section 4.1.

    A page is ``html < head -> title -> ..., body -> ... >``; elements
    are nodes labeled with tag symbols; anchors carry ``href`` references
    to other pages and a ``cont`` content child.
    """
    phtml = Pattern(
        "Phtml",
        [
            pnode(
                "html",
                edge_one(pnode("head", edge_one(pnode("title",
                                                      edge_one(name_leaf("Pelem")))))),
                edge_one(pnode("body", edge_star(name_leaf("Pelem")))),
            )
        ],
    )
    pelem = Pattern(
        "Pelem",
        [
            var("Text"),
            pnode(Var("Tag", SYMBOL), edge_star(name_leaf("Pelem"))),
            pnode("a",
                  edge_one(pnode("href", edge_one(ref_leaf("Phtml")))),
                  edge_one(pnode("cont", edge_one(name_leaf("Pelem"))))),
        ],
    )
    return Model("HTML", [phtml, pelem])


# ---------------------------------------------------------------------------
# The Car Schema model (bottom left of Figure 2 / Section 2 patterns).
# ---------------------------------------------------------------------------


def car_schema_model() -> Model:
    """The paper's specific ODMG schema: ``Pcar`` and ``Psup`` patterns
    exactly as written at the end of Section 2."""
    from .variables import STRING  # local import to keep top imports tidy

    pcar = Pattern(
        "Pcar",
        [
            pnode(
                "class",
                edge_one(
                    pnode(
                        "car",
                        edge_one(pnode("name", edge_one(var("S1", STRING)))),
                        edge_one(pnode("desc", edge_one(var("S2", STRING)))),
                        edge_one(
                            pnode("suppliers",
                                  edge_one(pnode("set", edge_star(ref_leaf("Psup")))))
                        ),
                    )
                ),
            )
        ],
    )
    psup = Pattern(
        "Psup",
        [
            pnode(
                "class",
                edge_one(
                    pnode(
                        "supplier",
                        edge_one(pnode("name", edge_one(var("S1", STRING)))),
                        edge_one(pnode("city", edge_one(var("S2", STRING)))),
                        edge_one(pnode("zip", edge_one(var("S3", STRING)))),
                    )
                ),
            )
        ],
    )
    return Model("CarSchema", [pcar, psup])


BUILTIN_MODELS = {
    "Yat": yat_model,
    "ODMG": odmg_model,
    "Relational": relational_model,
    "SGML": sgml_model,
    "HTML": html_model,
    "CarSchema": car_schema_model,
}


def builtin_model(name: str) -> Model:
    """Instantiate one of the shipped models by name."""
    try:
        factory = BUILTIN_MODELS[name]
    except KeyError:
        raise ModelError(f"no built-in model named {name!r}") from None
    return factory()
