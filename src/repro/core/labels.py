"""Node labels of the YAT model.

A YAT tree node is labeled by a *constant*: either a **symbol** (an
interned name such as ``class``, ``car`` or ``suppliers``) or an **atom**
(a piece of atomic data such as ``"Golf"`` or ``1995``). The distinction
matters because the paper's variable domains may be restricted to symbols
or to a given atomic type (Section 2: "constants can be either symbols
(e.g., class, name) or atomic data (e.g., 'Golf', 1995)").

Atoms are represented directly by the corresponding Python values
(``str``, ``int``, ``float``, ``bool``); symbols get a dedicated interned
:class:`Symbol` class so that ``Symbol("car") != "car"``.
"""

from __future__ import annotations

from typing import Union


class Symbol:
    """An interned symbolic constant.

    Two symbols with the same name are the *same object*, which makes
    equality and hashing cheap during pattern matching::

        >>> Symbol("car") is Symbol("car")
        True
        >>> Symbol("car") == "car"
        False
    """

    __slots__ = ("name", "_hash")
    _interned: dict = {}

    def __new__(cls, name: str) -> "Symbol":
        if not isinstance(name, str) or not name:
            raise TypeError(f"symbol name must be a non-empty string, got {name!r}")
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        sym = super().__new__(cls)
        object.__setattr__(sym, "name", name)
        object.__setattr__(sym, "_hash", hash((Symbol, name)))
        cls._interned[name] = sym
        return sym

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Symbol is immutable")

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Symbol):
            return self.name < other.name
        return NotImplemented

    def __reduce__(self):
        # Preserve interning across pickling.
        return (Symbol, (self.name,))


#: Type of atomic data labels.
Atom = Union[str, int, float, bool]

#: Type of any constant label.
Label = Union[Symbol, str, int, float, bool]

ATOM_TYPES = (str, int, float, bool)


def is_symbol(label: object) -> bool:
    """Return True if *label* is a symbolic constant."""
    return isinstance(label, Symbol)


def is_atom(label: object) -> bool:
    """Return True if *label* is atomic data (string, number or boolean)."""
    return isinstance(label, ATOM_TYPES)


def is_label(label: object) -> bool:
    """Return True if *label* is a valid node label (symbol or atom)."""
    return is_symbol(label) or is_atom(label)


def atom_type_name(value: object) -> str:
    """Return the YAT type name of an atom (``string``, ``int``, ...).

    Raises :class:`TypeError` for non-atomic values.
    """
    # bool must be tested before int: bool is a subclass of int in Python.
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    raise TypeError(f"not an atom: {value!r}")


def label_repr(label: object) -> str:
    """Render a label in YAT textual syntax.

    Symbols print bare (``car``), strings print quoted (``"Golf"``) and
    numbers/booleans print as literals.
    """
    if isinstance(label, Symbol):
        return label.name
    if isinstance(label, bool):
        return "true" if label else "false"
    if isinstance(label, str):
        escaped = label.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(label)


def label_sort_key(label: object) -> tuple:
    """A total order over heterogeneous labels, used by ordering edges.

    Labels are first grouped by kind (booleans, numbers, strings,
    symbols), then ordered within the kind. This gives ordering edges a
    deterministic result even on mixed collections.
    """
    if isinstance(label, bool):
        return (0, label)
    if isinstance(label, (int, float)):
        return (1, label)
    if isinstance(label, str):
        return (2, label)
    if isinstance(label, Symbol):
        return (3, label.name)
    return (4, str(label))
