"""Textual syntax for YAT patterns and models.

The paper specifies YATL programs through a graphical editor; the
programs the editor *generates* are what the interpreter executes. This
module defines the concrete ASCII syntax this reproduction uses in place
of the editor, covering patterns and models; rules and programs build on
it in :mod:`repro.yatl.parser`.

Pattern syntax (cf. end of Section 2)::

    class -> supplier < -> name -> SN,
                          -> city -> C,
                          -> zip -> Z >

* ``->`` plain edge, ``*->`` star edge, ``{}->`` grouping edge,
  ``[SN]->`` ordering edge, ``(I)->`` index edge;
* lowercase identifiers are symbols, quoted strings / numbers /
  ``true``/``false`` are atoms;
* uppercase identifiers are variables (``SN``), optionally typed
  (``S1:string``, ``X:(set|bag)``); an uppercase *type* makes the leaf a
  pattern variable (``P2:Ptype``), and ``^Data`` forces an untyped
  pattern variable;
* ``Name(Args)`` is a Skolem/pattern-name leaf, ``&Name(Args)`` a
  reference; a bare uppercase leaf that names a declared pattern resolves
  to that pattern (``Ptype`` inside the ODMG model).

Model syntax::

    model ODMG {
      pattern Pclass = class -> Class_name:symbol *-> Att:symbol -> Ptype
      pattern Ptype  = Y:(string|int|float|bool)
                     | X:(set|bag|list|array) *-> Ptype
                     | &Pclass
    }
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SyntaxYatError
from .labels import Symbol
from .models import Model
from .patterns import (
    NameTerm,
    Pattern,
    PChild,
    PEdge,
    PNameLeaf,
    PNode,
    PRefLeaf,
    PVarLeaf,
    edge_group,
    edge_index,
    edge_one,
    edge_order,
    edge_star,
)
from .variables import (
    ANY,
    Domain,
    EnumDomain,
    PatternVar,
    Var,
    domain_by_name,
    union_domain,
)

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

KEYWORDS = {
    "rule",
    "program",
    "model",
    "pattern",
    "is",
    "end",
    "input",
    "output",
    "import",
    "hierarchy",
    "under",
}

BOOL_WORDS = {"true": True, "false": False}

_PUNCT = [
    # longest first
    ("{}->", "GROUP_ARROW"),
    ("*->", "STAR_ARROW"),
    ("->", "ARROW"),
    ("<=", "LE"),
    (">=", "GE"),
    ("!=", "NE"),
    ("==", "EQ"),
    ("<", "LT"),
    (">", "GT"),
    ("=", "EQ"),
    ("&", "AMP"),
    ("^", "CARET"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    (",", "COMMA"),
    (":", "COLON"),
    ("|", "PIPE"),
    (";", "SEMI"),
]


class Token:
    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_: str, value: object, line: int, column: int) -> None:
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Turn YAT/YATL source text into a token list (ending with EOF)."""
    tokens: List[Token] = []
    i, line, col = 0, 1, 1
    n = len(text)

    def error(message: str) -> SyntaxYatError:
        return SyntaxYatError(message, line, col)

    while i < n:
        ch = text[i]
        # whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise error("unterminated comment")
            skipped = text[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # strings
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(
                        escape, escape
                    ))
                    j += 2
                else:
                    if text[j] == "\n":
                        raise error("unterminated string literal")
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("STRING", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # numbers (optionally negative)
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            raw = text[i:j]
            if raw.count(".") > 1:
                raise error(f"malformed number {raw!r}")
            if "." in raw:
                tokens.append(Token("FLOAT", float(raw), line, col))
            else:
                tokens.append(Token("INT", int(raw), line, col))
            col += j - i
            i = j
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word in BOOL_WORDS:
                tokens.append(Token("BOOL", BOOL_WORDS[word], line, col))
            elif word in KEYWORDS:
                tokens.append(Token(word.upper(), word, line, col))
            elif word[0].isupper():
                tokens.append(Token("UIDENT", word, line, col))
            else:
                tokens.append(Token("IDENT", word, line, col))
            col += j - i
            i = j
            continue
        # punctuation
        for literal, type_ in _PUNCT:
            if text.startswith(literal, i):
                tokens.append(Token(type_, literal, line, col))
                i += len(literal)
                col += len(literal)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", None, line, col))
    return tokens


# ---------------------------------------------------------------------------
# Token stream with lookahead / backtracking
# ---------------------------------------------------------------------------


class TokenStream:
    """Cursor over a token list with save/restore for local lookahead."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self.tokens = list(tokens)
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.type != "EOF":
            self.pos += 1
        return token

    def at(self, *types: str) -> bool:
        return self.peek().type in types

    def accept(self, *types: str) -> Optional[Token]:
        if self.at(*types):
            return self.next()
        return None

    def expect(self, *types: str) -> Token:
        token = self.peek()
        if token.type not in types:
            raise SyntaxYatError(
                f"expected {' or '.join(types)}, found {token.type} ({token.value!r})",
                token.line,
                token.column,
            )
        return self.next()

    def save(self) -> int:
        return self.pos

    def restore(self, mark: int) -> None:
        self.pos = mark


# ---------------------------------------------------------------------------
# Pattern parser
# ---------------------------------------------------------------------------

EDGE_STARTERS = ("ARROW", "STAR_ARROW", "GROUP_ARROW", "LBRACKET", "LPAREN")


def parse_edge_indicator(stream: TokenStream) -> Optional[Tuple[str, tuple, Optional[Var]]]:
    """Try to parse an edge indicator; returns (kind, criteria, index_var)
    or None (without consuming) if the next tokens are not an edge."""
    token = stream.peek()
    if token.type == "ARROW":
        stream.next()
        return ("one", (), None)
    if token.type == "STAR_ARROW":
        stream.next()
        return ("star", (), None)
    if token.type == "GROUP_ARROW":
        stream.next()
        return ("group", (), None)
    if token.type == "LBRACKET":
        mark = stream.save()
        stream.next()
        criteria: List[Var] = []
        while True:
            name = stream.accept("UIDENT")
            if name is None:
                stream.restore(mark)
                return None
            criteria.append(Var(name.value))
            if stream.accept("COMMA"):
                continue
            break
        if not stream.accept("RBRACKET") or not stream.accept("ARROW"):
            stream.restore(mark)
            return None
        return ("order", tuple(criteria), None)
    if token.type == "LPAREN":
        # index edge: '(' UIDENT ')' '->'
        if (
            stream.peek(1).type == "UIDENT"
            and stream.peek(2).type == "RPAREN"
            and stream.peek(3).type == "ARROW"
        ):
            stream.next()
            index_var = Var(stream.next().value)
            stream.next()
            stream.next()
            return ("index", (), index_var)
        return None
    return None


def _make_edge(kind: str, target: PChild, criteria: tuple, index_var: Optional[Var]) -> PEdge:
    if kind == "one":
        return edge_one(target)
    if kind == "star":
        return edge_star(target)
    if kind == "group":
        return edge_group(target)
    if kind == "order":
        return edge_order(target, *criteria)
    return edge_index(target, index_var)


def parse_domain(stream: TokenStream) -> Union[Domain, str]:
    """Parse a domain annotation after ``:``.

    Returns a :class:`Domain` for data-variable domains, or a string
    (pattern name) when the domain is an uppercase identifier — the leaf
    is then a pattern variable.
    """
    if stream.at("UIDENT"):
        return stream.next().value
    if stream.at("IDENT"):
        token = stream.next()
        try:
            return domain_by_name(token.value)
        except ValueError as exc:
            raise SyntaxYatError(str(exc), token.line, token.column) from None
    if stream.at("LPAREN"):
        stream.next()
        members: List[Domain] = []
        symbols: List[Symbol] = []
        while True:
            token = stream.expect("IDENT")
            try:
                members.append(domain_by_name(token.value))
            except ValueError:
                symbols.append(Symbol(token.value))
            if stream.accept("PIPE"):
                continue
            break
        stream.expect("RPAREN")
        if symbols:
            members.append(EnumDomain(symbols))
        return union_domain(members)
    token = stream.peek()
    raise SyntaxYatError(
        f"expected a domain, found {token.value!r}", token.line, token.column
    )


def parse_name_args(stream: TokenStream) -> list:
    """Parse ``( Arg, ... )`` after a pattern name; arguments are
    variables or constants (constant Skolem arguments appear in
    instantiated programs, Section 4.1)."""
    args = []
    stream.expect("LPAREN")
    if not stream.at("RPAREN"):
        while True:
            token = stream.expect("UIDENT", "IDENT", "STRING", "INT", "FLOAT", "BOOL")
            if token.type == "UIDENT":
                args.append(Var(token.value))
            elif token.type == "IDENT":
                args.append(Symbol(token.value))
            else:
                args.append(token.value)
            if not stream.accept("COMMA"):
                break
    stream.expect("RPAREN")
    return args


def parse_pattern_child(stream: TokenStream) -> PChild:
    """Parse one pattern tree (node, leaf, reference, name term...)."""
    token = stream.peek()

    # reference leaf: '&' UIDENT [ '(' args ')' ]
    if token.type == "AMP":
        stream.next()
        name = stream.expect("UIDENT").value
        if stream.at("LPAREN") and not _looks_like_index_edge(stream):
            args = parse_name_args(stream)
            return PRefLeaf(NameTerm(name, args))
        return PRefLeaf(NameTerm(name))

    # explicit pattern variable leaf: '^' UIDENT [':' UIDENT]
    if token.type == "CARET":
        stream.next()
        name = stream.expect("UIDENT").value
        domain: Optional[str] = None
        if stream.accept("COLON"):
            parsed = parse_domain(stream)
            if not isinstance(parsed, str):
                raise SyntaxYatError(
                    "pattern variables take pattern-name domains",
                    token.line,
                    token.column,
                )
            domain = parsed
        return PVarLeaf(PatternVar(name, domain))

    # atoms as labels
    if token.type in ("STRING", "INT", "FLOAT", "BOOL"):
        stream.next()
        return _parse_node_tail(stream, token.value)

    # lowercase identifier: a symbol label. Keywords double as symbols
    # inside patterns (SGML elements may be named "model", "pattern"...).
    if token.type == "IDENT" or (
        isinstance(token.value, str) and token.value in KEYWORDS
    ):
        stream.next()
        return _parse_node_tail(stream, Symbol(token.value))

    if token.type == "UIDENT":
        stream.next()
        name = token.value
        # Skolem / pattern-name leaf with arguments
        if stream.at("LPAREN") and not _looks_like_index_edge(stream):
            args = parse_name_args(stream)
            return PNameLeaf(NameTerm(name, args))
        # typed variable
        if stream.at("COLON") and stream.peek(1).type in (
            "IDENT",
            "UIDENT",
            "LPAREN",
        ):
            mark = stream.save()
            stream.next()
            domain = parse_domain(stream)
            if isinstance(domain, str):
                return PVarLeaf(PatternVar(name, domain))
            return _parse_node_tail(stream, Var(name, domain))
        # bare uppercase identifier: a data variable label (may be
        # re-resolved into a pattern-name leaf later)
        return _parse_node_tail(stream, Var(name))

    raise SyntaxYatError(
        f"expected a pattern, found {token.value!r}", token.line, token.column
    )


def _looks_like_index_edge(stream: TokenStream) -> bool:
    return (
        stream.peek().type == "LPAREN"
        and stream.peek(1).type == "UIDENT"
        and stream.peek(2).type == "RPAREN"
        and stream.peek(3).type == "ARROW"
    )


def _parse_node_tail(stream: TokenStream, label) -> PChild:
    """After a node label: either ``<`` edge-list ``>``, a single chained
    edge, or nothing (leaf)."""
    if stream.at("LT"):
        stream.next()
        edges: List[PEdge] = []
        while True:
            indicator = parse_edge_indicator(stream)
            if indicator is None:
                token = stream.peek()
                raise SyntaxYatError(
                    f"expected an edge, found {token.value!r}",
                    token.line,
                    token.column,
                )
            kind, criteria, index_var = indicator
            target = parse_pattern_child(stream)
            edges.append(_make_edge(kind, target, criteria, index_var))
            if stream.accept("COMMA"):
                continue
            break
        stream.expect("GT")
        return PNode(label, edges)
    indicator = parse_edge_indicator(stream)
    if indicator is not None:
        kind, criteria, index_var = indicator
        target = parse_pattern_child(stream)
        return PNode(label, [_make_edge(kind, target, criteria, index_var)])
    return PNode(label, [])


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------


def resolve_pattern_names(node: PChild, known_names: Set[str]) -> PChild:
    """Convert bare variable leaves that name declared patterns into
    pattern-name (dereferencing) leaves.

    The textual syntax cannot distinguish a data variable ``Ptype`` from
    a reference to the pattern ``Ptype``; this pass resolves the
    ambiguity using the set of declared pattern names, exactly like the
    paper's typographic convention (bold = pattern name).
    """
    if isinstance(node, PNode):
        if (
            not node.edges
            and isinstance(node.label, Var)
            and node.label.name in known_names
            and node.label.domain == ANY
        ):
            return PNameLeaf(NameTerm(node.label.name))
        new_edges = [
            edge.with_target(resolve_pattern_names(edge.target, known_names))
            for edge in node.edges
        ]
        if new_edges == list(node.edges):
            return node
        return PNode(node.label, new_edges)
    return node


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_pattern_tree(
    text: str, known_names: Iterable[str] = ()
) -> PChild:
    """Parse a single pattern tree from text."""
    stream = TokenStream(tokenize(text))
    child = parse_pattern_child(stream)
    stream.expect("EOF")
    return resolve_pattern_names(child, set(known_names))


def parse_pattern(text: str, known_names: Iterable[str] = ()) -> Pattern:
    """Parse a named pattern: ``Name = tree | tree | ...``."""
    stream = TokenStream(tokenize(text))
    pattern = _parse_pattern_decl(stream, set(known_names))
    stream.expect("EOF")
    return pattern


def _parse_pattern_decl(stream: TokenStream, known_names: Set[str]) -> Pattern:
    name = stream.expect("UIDENT").value
    stream.expect("EQ")
    known = set(known_names) | {name}
    alternatives = [resolve_pattern_names(parse_pattern_child(stream), known)]
    while stream.accept("PIPE"):
        alternatives.append(
            resolve_pattern_names(parse_pattern_child(stream), known)
        )
    return Pattern(name, alternatives)


def parse_model(text: str, known_names: Iterable[str] = ()) -> Model:
    """Parse ``model Name { pattern N = ... ... }``."""
    stream = TokenStream(tokenize(text))
    model = parse_model_from(stream, set(known_names))
    stream.expect("EOF")
    return model


def parse_model_from(stream: TokenStream, known_names: Set[str]) -> Model:
    stream.expect("MODEL")
    name = stream.expect("UIDENT", "IDENT").value
    stream.expect("LBRACE")
    # first pass: find the declared pattern names for forward references
    mark = stream.save()
    declared: Set[str] = set(known_names)
    depth = 1
    while depth > 0:
        token = stream.next()
        if token.type == "EOF":
            raise SyntaxYatError("unterminated model block", token.line, token.column)
        if token.type == "LBRACE":
            depth += 1
        elif token.type == "RBRACE":
            depth -= 1
        elif token.type == "PATTERN":
            declared.add(stream.peek().value)
    stream.restore(mark)
    model = Model(name)
    while stream.accept("PATTERN"):
        model.add(_parse_pattern_decl(stream, declared))
    stream.expect("RBRACE")
    return model
