"""Columnar forest arena: a struct-of-arrays YAT forest.

The interpreter's hot loops spend most of their time chasing
:class:`~repro.core.trees.Tree` pointers one Python attribute access at
a time. This module stores a whole forest as flat, contiguous columns —
the layout bulk mediation engines use so per-node work becomes per-array
work:

* ``labels`` — interned label ids (one process-global
  :class:`InternTable`, shared with the dispatch index's root
  signatures);
* ``kinds`` — one byte per node: symbol/string/int/float/bool label or
  reference leaf;
* ``parent`` / ``first_child`` / ``next_sibling`` / ``n_children`` —
  structure as offset arrays (``-1`` = none).

Nodes are laid out in **DFS preorder**, so every subtree — and every
named root tree — occupies one contiguous block of offsets. That makes
three things cheap: a subtree's structural identity is a couple of
column slices (:meth:`ArenaStore.root_key`), a shard of roots is a
couple of array slices (:class:`ArenaShard`, pickled as flat buffers),
and streaming *zero-copy import* is a push/pop :class:`ArenaWriter`
(wrappers append parse events straight into the columns, no
intermediate ``Tree`` allocation).

Conversion is lossless and hash-stable both ways: ``Arena.from_trees``
/ ``Arena.to_trees`` round-trip to equal trees with equal
``Tree.__hash__`` (the intern table keys on ``(kind, value)`` pairs, so
``1``, ``1.0`` and ``True`` — equal and hash-equal in Python — keep
distinct ids and decode to their exact original type).

:class:`ArenaStore` duck-types the read API of
:class:`~repro.core.trees.DataStore` (the interpreter's ``ForestView``
seam): anything that only reads named trees works on either
representation, and materialization is lazy and cached per root.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DanglingReferenceError
from .labels import Label, Symbol, is_label
from .trees import DataStore, Ref, Tree

Child = Union[Tree, Ref]

# Node-kind flags (the ``kinds`` column). ``bool`` must be tested before
# ``int`` everywhere: it is a subclass, and ``True == 1`` — the kind byte
# is what keeps them apart in the columns.
K_SYMBOL = 0
K_STRING = 1
K_INT = 2
K_FLOAT = 3
K_BOOL = 4
K_REF = 5

_SENTINEL = object()


def label_kind(label: object) -> int:
    """The kind byte of a tree label (references are not labels)."""
    if type(label) is Symbol or isinstance(label, Symbol):
        return K_SYMBOL
    if isinstance(label, bool):
        return K_BOOL
    if isinstance(label, str):
        return K_STRING
    if isinstance(label, int):
        return K_INT
    if isinstance(label, float):
        return K_FLOAT
    raise TypeError(f"invalid arena label: {label!r}")


class InternTable:
    """Bidirectional ``(kind, value) <-> id`` label interning.

    One process-global instance (:data:`GLOBAL_INTERN`) is shared by
    every arena, the dispatch index's root signatures and the fast-path
    matcher, so a label comparison anywhere in the hot path is one
    integer comparison. Keys are ``(kind, value)`` pairs rather than
    bare values because Python conflates ``1 == 1.0 == True``; the kind
    byte keeps the ids — and therefore the decoded labels — distinct.

    The table also caches one leaf ``Tree`` per non-reference id:
    decoding and head construction reuse the same immutable leaf objects
    instead of reallocating them.
    """

    __slots__ = ("_ids", "_values", "_kinds", "_leaves", "_leaf_by_label")

    def __init__(self) -> None:
        self._ids: Dict[Tuple[int, object], int] = {}
        self._values: List[object] = []
        self._kinds = bytearray()
        self._leaves: Dict[int, Tree] = {}
        # (type, value)-keyed front cache for leaf_for: the type keeps
        # 1/1.0/True apart exactly like the kind byte does.
        self._leaf_by_label: Dict[Tuple[type, object], Tree] = {}

    def intern(self, kind: int, value: object) -> int:
        """The id of ``(kind, value)``, allocating one if new."""
        key = (kind, value)
        ident = self._ids.get(key)
        if ident is None:
            ident = len(self._values)
            self._ids[key] = ident
            self._values.append(value)
            self._kinds.append(kind)
        return ident

    def intern_label(self, label: Label) -> int:
        return self.intern(label_kind(label), label)

    def intern_ref(self, target: str) -> int:
        return self.intern(K_REF, target)

    def find_label(self, label: Label) -> int:
        """The id of *label*, or -1 when it was never interned (a label
        no arena has seen cannot occur in any column)."""
        ident = self._ids.get((label_kind(label), label), _SENTINEL)
        return -1 if ident is _SENTINEL else ident  # type: ignore[return-value]

    def value(self, ident: int) -> object:
        """The label object (or reference target string) of an id."""
        return self._values[ident]

    def raw_values(self) -> List[object]:
        """The live id -> value list, for hot loops that index it
        directly instead of paying a method call per lookup. Read-only
        by convention; it grows as new labels are interned."""
        return self._values

    def kind(self, ident: int) -> int:
        return self._kinds[ident]

    def entry(self, ident: int) -> Tuple[int, object]:
        return (self._kinds[ident], self._values[ident])

    def leaf(self, ident: int) -> Tree:
        """The cached leaf ``Tree`` for a non-reference label id."""
        cached = self._leaves.get(ident)
        if cached is None:
            # _make is safe: interned values are validated labels.
            cached = Tree._make(self._values[ident])  # type: ignore[arg-type]
            self._leaves[ident] = cached
        return cached

    def leaf_for(self, label: Label) -> Tree:
        key = (label.__class__, label)
        cached = self._leaf_by_label.get(key)
        if cached is None:
            cached = self.leaf(self.intern_label(label))
            self._leaf_by_label[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self._values)


#: The process-global intern table. Worker processes each grow their
#: own (ids are process-local); :class:`ArenaShard` ships ``(kind,
#: value)`` vocabularies and re-interns on arrival.
GLOBAL_INTERN = InternTable()


def label_alias_ids(intern: InternTable, label: Label) -> frozenset:
    """Every intern id whose value ``==`` *label*.

    Label matching uses Python equality, under which ``1``, ``1.0`` and
    ``True`` coincide even though the table keeps their ids distinct —
    so a numeric pattern label admits up to three ids. Non-numeric
    labels (symbols, strings) always map to exactly one."""
    ids = {intern.intern_label(label)}
    if isinstance(label, bool):
        ids.add(intern.intern(K_INT, int(label)))
        ids.add(intern.intern(K_FLOAT, float(label)))
    elif isinstance(label, int):
        if label in (0, 1):
            ids.add(intern.intern(K_BOOL, bool(label)))
        ids.add(intern.intern(K_FLOAT, float(label)))
    elif isinstance(label, float):
        if label.is_integer():
            ids.add(intern.intern(K_INT, int(label)))
            if label in (0.0, 1.0):
                ids.add(intern.intern(K_BOOL, bool(label)))
    return frozenset(ids)


class ArenaWriter:
    """Streaming appender: ``open``/``leaf``/``ref``/``close`` events.

    This is the zero-copy import surface — wrappers drive it directly
    from rows/parse events, so a forest lands in the columns without any
    intermediate ``Tree`` being built. Events must nest properly; the
    structure columns (``first_child``/``next_sibling``/``n_children``)
    are linked up as events arrive.
    """

    __slots__ = ("arena", "_stack")

    def __init__(self, arena: "Arena") -> None:
        self.arena = arena
        self._stack: List[List[int]] = []  # [offset, last child offset]

    def _append(self, label_id: int, kind: int) -> int:
        arena = self.arena
        offset = len(arena.labels)
        arena.labels.append(label_id)
        arena.kinds.append(kind)
        arena.first_child.append(-1)
        arena.next_sibling.append(-1)
        arena.n_children.append(0)
        stack = self._stack
        if stack:
            top = stack[-1]
            parent = top[0]
            arena.parent.append(parent)
            if top[1] == -1:
                arena.first_child[parent] = offset
            else:
                arena.next_sibling[top[1]] = offset
            arena.n_children[parent] += 1
            top[1] = offset
        else:
            arena.parent.append(-1)
        return offset

    def open(self, label: Label) -> int:
        """Begin an interior node; children follow until ``close()``."""
        ident = self.arena.intern.intern_label(label)
        offset = self._append(ident, self.arena.intern.kind(ident))
        self._stack.append([offset, -1])
        return offset

    def leaf(self, label: Label) -> int:
        """Append a leaf node carrying *label*."""
        ident = self.arena.intern.intern_label(label)
        return self._append(ident, self.arena.intern.kind(ident))

    def ref(self, target: str) -> int:
        """Append a reference leaf ``&target``."""
        return self._append(self.arena.intern.intern_ref(target), K_REF)

    def close(self) -> int:
        """End the innermost open node; returns its offset."""
        return self._stack.pop()[0]

    @property
    def depth(self) -> int:
        return len(self._stack)


class Arena:
    """The struct-of-arrays forest itself (no names — see
    :class:`ArenaStore` for the named view)."""

    __slots__ = (
        "intern", "labels", "kinds", "parent",
        "first_child", "next_sibling", "n_children", "roots",
    )

    def __init__(self, intern: Optional[InternTable] = None) -> None:
        self.intern = intern if intern is not None else GLOBAL_INTERN
        self.labels = array("q")
        self.kinds = bytearray()
        self.parent = array("q")
        self.first_child = array("q")
        self.next_sibling = array("q")
        self.n_children = array("q")
        self.roots = array("q")  # offsets of the encoded root nodes

    def __len__(self) -> int:
        return len(self.labels)

    def writer(self) -> ArenaWriter:
        return ArenaWriter(self)

    # -- encode -------------------------------------------------------------

    def encode(self, node: Child) -> int:
        """Append one tree (DFS preorder) and record it as a root;
        returns its offset."""
        writer = ArenaWriter(self)
        root_offset = -1
        close = _SENTINEL
        stack: List[object] = [node]
        while stack:
            item = stack.pop()
            if item is close:
                writer.close()
                continue
            if isinstance(item, Ref):
                offset = writer.ref(item.target)
            elif not item.children:  # type: ignore[union-attr]
                offset = writer.leaf(item.label)  # type: ignore[union-attr]
            else:
                offset = writer.open(item.label)  # type: ignore[union-attr]
                stack.append(close)
                stack.extend(reversed(item.children))  # type: ignore[union-attr]
            if root_offset < 0:
                root_offset = offset
        self.roots.append(root_offset)
        return root_offset

    @classmethod
    def from_trees(
        cls, trees: Sequence[Child], intern: Optional[InternTable] = None
    ) -> "Arena":
        """Encode a forest; ``arena.roots[i]`` holds ``trees[i]``."""
        arena = cls(intern)
        for node in trees:
            arena.encode(node)
        return arena

    # -- decode -------------------------------------------------------------

    def decode(self, offset: int) -> Child:
        """Rebuild the tree rooted at *offset* (lossless, hash-stable:
        the result is ``==`` to — and hashes like — what was encoded)."""
        intern = self.intern
        labels, kinds = self.labels, self.kinds
        first_child, next_sibling = self.first_child, self.next_sibling
        built: Dict[int, Child] = {}
        stack: List[Tuple[int, bool]] = [(offset, False)]
        while stack:
            node, expanded = stack.pop()
            if kinds[node] == K_REF:
                built[node] = Ref(intern.value(labels[node]))  # type: ignore[arg-type]
                continue
            child = first_child[node]
            if child == -1:
                built[node] = intern.leaf(labels[node])
                continue
            if not expanded:
                stack.append((node, True))
                while child != -1:
                    stack.append((child, False))
                    child = next_sibling[child]
                continue
            children: List[Child] = []
            while child != -1:
                children.append(built[child])
                child = next_sibling[child]
            built[node] = Tree._make(  # trusted: labels/children interned
                intern.value(labels[node]), tuple(children)  # type: ignore[arg-type]
            )
        return built[offset]

    def to_trees(self) -> List[Child]:
        """Decode every root, in encoding order."""
        return [self.decode(offset) for offset in self.roots]

    def subtree_end(self, offset: int) -> int:
        """One past the last offset of the subtree at *offset* (DFS
        preorder makes every subtree contiguous)."""
        sibling = self.next_sibling[offset]
        node = offset
        while sibling == -1:
            node = self.parent[node]
            if node == -1:
                # Offset starts the forest's tail — also every root's
                # case when roots are encoded back to back.
                index = self.roots.index(offset) if offset in self.roots else -1
                if index >= 0 and index + 1 < len(self.roots):
                    return self.roots[index + 1]
                return len(self.labels)
            sibling = self.next_sibling[node]
        return sibling

    def nbytes(self) -> int:
        """Approximate payload size of the columns, in bytes."""
        return (
            len(self.labels) * self.labels.itemsize * 5  # four q columns + roots amortized
            + len(self.kinds)
        )


def group_runs(
    keyed: Sequence[Tuple[object, int]], presorted: bool = False
) -> List[Tuple[object, List[int]]]:
    """Sort ``(key, offset)`` pairs and collapse them into runs.

    The arena's grouping/ORDER primitive: one sort over the pairs, then
    a single run-length pass emitting ``(key, [offsets...])`` per
    distinct key, in key order. Offsets within a run keep their sorted
    (stable) relative order. Pass ``presorted=True`` to skip the sort
    when the caller already ordered the pairs.
    """
    if not keyed:
        return []
    pairs = list(keyed) if presorted else sorted(keyed, key=lambda kv: (kv[0], kv[1]))
    runs: List[Tuple[object, List[int]]] = []
    run_key = pairs[0][0]
    run: List[int] = []
    for key, offset in pairs:
        if key != run_key:
            runs.append((run_key, run))
            run_key, run = key, []
        run.append(offset)
    runs.append((run_key, run))
    return runs


class ArenaStore:
    """A named, DataStore-compatible read view over an :class:`Arena`.

    This is the interpreter's ``ForestView`` seam: it offers the read
    API of :class:`~repro.core.trees.DataStore` (``get`` /
    ``get_optional`` / ``resolve`` / ``names`` / ``items`` / iteration /
    ``dangling_references`` / ...), so every consumer that only *reads*
    named trees accepts either representation. Tree materialization is
    lazy and cached per root; trees added through :meth:`add` keep their
    original objects, so a store round-tripped from trees never decodes.
    """

    def __init__(self, arena: Optional[Arena] = None) -> None:
        self.arena = arena if arena is not None else Arena()
        self._names: List[str] = []
        self._positions: Dict[str, int] = {}
        self._cache: Dict[int, Child] = {}  # root index -> materialized tree
        self._by_id: Dict[int, int] = {}  # id(materialized tree) -> root index
        if len(self.arena.roots) and not self._names:
            for index in range(len(self.arena.roots)):
                self._register(f"t{index}")

    def _register(self, name: str) -> int:
        index = len(self._names)
        self._names.append(name)
        self._positions[name] = index
        return index

    # -- building -----------------------------------------------------------

    def add(self, name: str, node: Tree) -> None:
        """Encode one named tree (keeps *node* as the cached
        materialization, so reading it back costs nothing)."""
        if not isinstance(node, Tree):
            raise TypeError(f"store values must be trees, got {node!r}")
        if name in self._positions:
            raise ValueError(
                f"arena stores are append-only: {name!r} already present"
            )
        self.arena.encode(node)
        index = self._register(name)
        self._cache[index] = node
        self._by_id[id(node)] = index

    def add_root(self, name: str, offset: int) -> None:
        """Name a root already appended through an :class:`ArenaWriter`
        (the zero-copy import path; nothing is materialized)."""
        if name in self._positions:
            raise ValueError(
                f"arena stores are append-only: {name!r} already present"
            )
        self.arena.roots.append(offset)
        self._register(name)

    @classmethod
    def from_data_store(cls, store: DataStore) -> "ArenaStore":
        arena_store = cls()
        for name, node in store:
            arena_store.add(name, node)
        return arena_store

    def to_data_store(self) -> DataStore:
        """Materialize everything into a plain :class:`DataStore` (the
        ``--no-arena`` ablation path)."""
        store = DataStore()
        for index, name in enumerate(self._names):
            store.add(name, self.tree_root(index))
        return store

    # -- arena-level access --------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    def root_offset(self, index: int) -> int:
        return self.arena.roots[index]

    def root_block(self, index: int) -> Tuple[int, int]:
        """The contiguous ``[start, end)`` offset block of root *index*
        (roots are encoded back to back)."""
        roots = self.arena.roots
        start = roots[index]
        end = roots[index + 1] if index + 1 < len(roots) else len(self.arena)
        return start, end

    def root_key(self, index: int) -> Tuple[bytes, bytes, bytes]:
        """Structural identity of root *index* as flat column slices.

        Encoding is deterministic, so two roots have equal keys iff
        their trees are equal — the arena's stand-in for ``Tree``
        value equality, without materializing either tree.
        """
        start, end = self.root_block(index)
        arena = self.arena
        return (
            arena.labels[start:end].tobytes(),
            bytes(arena.kinds[start:end]),
            arena.n_children[start:end].tobytes(),
        )

    def tree_root(self, index: int) -> Child:
        """Materialize root *index* (cached: repeated calls return the
        same object, so ``id()``-keyed interpreter state stays stable)."""
        cached = self._cache.get(index)
        if cached is None:
            cached = self.arena.decode(self.arena.roots[index])
            self._cache[index] = cached
            self._by_id[id(cached)] = index
        return cached

    def index_of_tree(self, node: Child) -> Optional[int]:
        """The root index of a tree object materialized by this store
        (None for foreign objects)."""
        return self._by_id.get(id(node))

    def name_at(self, index: int) -> str:
        return self._names[index]

    def materialized_indices(self) -> List[int]:
        return list(self._cache)

    # -- DataStore read API ---------------------------------------------------

    def get(self, name: str) -> Child:
        index = self._positions.get(name)
        if index is None:
            raise DanglingReferenceError(f"no tree named {name!r} in store")
        return self.tree_root(index)

    def get_optional(self, name: str) -> Optional[Child]:
        index = self._positions.get(name)
        return None if index is None else self.tree_root(index)

    def resolve(self, ref: Ref) -> Child:
        return self.get(ref.target)

    def names(self) -> List[str]:
        return list(self._names)

    def trees(self) -> List[Child]:
        return [self.tree_root(index) for index in range(len(self._names))]

    def items(self) -> List[Tuple[str, Child]]:
        return [
            (name, self.tree_root(index))
            for index, name in enumerate(self._names)
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def __iter__(self) -> Iterator[Tuple[str, Child]]:
        return iter(self.items())

    def __repr__(self) -> str:
        return (
            f"ArenaStore({len(self._names)} trees, "
            f"{len(self.arena)} nodes, {len(self._cache)} materialized)"
        )

    # -- integrity ------------------------------------------------------------

    def dangling_references(self) -> List[str]:
        """Columnar scan: reference targets absent from the store (no
        tree is materialized)."""
        arena = self.arena
        missing: List[str] = []
        positions = self._positions
        value = arena.intern.value
        labels = arena.labels
        for offset, kind in enumerate(arena.kinds):
            if kind == K_REF:
                target = value(labels[offset])
                if target not in positions:
                    missing.append(target)  # type: ignore[arg-type]
        return missing

    def check(self) -> None:
        missing = self.dangling_references()
        if missing:
            raise DanglingReferenceError(
                f"dangling references: {', '.join(sorted(set(missing)))}"
            )

    def materialize(self, name: str) -> Tree:
        """Named tree with references recursively spliced (delegates to
        the DataStore implementation; a rare, read-everything path)."""
        return self.to_data_store().materialize(name)

    def copy(self) -> "ArenaStore":
        duplicate = ArenaStore(self.arena)
        duplicate._names = list(self._names)
        duplicate._positions = dict(self._positions)
        duplicate._cache = dict(self._cache)
        duplicate._by_id = dict(self._by_id)
        return duplicate


class ArenaShard:
    """A picklable slice of an :class:`ArenaStore` (roots ``[lo, hi)``).

    Columns pickle as flat array buffers — no per-tree ``__reduce__``
    walk — which is what makes arena sharding cheap compared to pickling
    tree objects. Intern ids are process-local, so the shard carries a
    dense local ``vocab`` of ``(kind, value)`` entries; ``to_store``
    re-interns them into the receiving process's global table. Structure
    columns are not shipped at all: DFS preorder plus per-node child
    counts reconstruct ``parent``/``first_child``/``next_sibling`` in
    one linear pass.
    """

    __slots__ = ("names", "labels", "n_children", "root_starts", "vocab")

    def __init__(
        self,
        names: List[str],
        labels: array,
        n_children: array,
        root_starts: array,
        vocab: List[Tuple[int, object]],
    ) -> None:
        self.names = names
        self.labels = labels
        self.n_children = n_children
        self.root_starts = root_starts
        self.vocab = vocab

    @classmethod
    def slice(cls, store: ArenaStore, lo: int, hi: int) -> "ArenaShard":
        arena = store.arena
        start, _ = store.root_block(lo)
        _, end = store.root_block(hi - 1)
        global_labels = arena.labels[start:end]
        entry = arena.intern.entry
        local_ids: Dict[int, int] = {}
        vocab: List[Tuple[int, object]] = []
        labels = array("q")
        for ident in global_labels:
            local = local_ids.get(ident)
            if local is None:
                local = len(vocab)
                local_ids[ident] = local
                vocab.append(entry(ident))
            labels.append(local)
        root_starts = array(
            "q", (arena.roots[index] - start for index in range(lo, hi))
        )
        return cls(
            names=[store.name_at(index) for index in range(lo, hi)],
            labels=labels,
            n_children=arena.n_children[start:end],
            root_starts=root_starts,
            vocab=vocab,
        )

    def nbytes(self) -> int:
        return (
            len(self.labels) * self.labels.itemsize
            + len(self.n_children) * self.n_children.itemsize
            + len(self.root_starts) * self.root_starts.itemsize
            + sum(sys.getsizeof(value) for _, value in self.vocab)
        )

    def to_store(self, intern: Optional[InternTable] = None) -> ArenaStore:
        """Rebuild an :class:`ArenaStore` in this process: re-intern the
        vocabulary, remap the label column, and derive the structure
        columns from the child counts."""
        table = intern if intern is not None else GLOBAL_INTERN
        global_ids = array(
            "q", (table.intern(kind, value) for kind, value in self.vocab)
        )
        kind_of = bytearray(kind for kind, _ in self.vocab)
        arena = Arena(table)
        arena.labels = array("q", (global_ids[local] for local in self.labels))
        arena.kinds = bytearray(kind_of[local] for local in self.labels)
        n_children = self.n_children
        size = len(n_children)
        arena.n_children = array("q", n_children)
        parent = array("q", [-1]) * size
        first_child = array("q", [-1]) * size
        next_sibling = array("q", [-1]) * size
        stack: List[List[int]] = []  # [offset, remaining children, last child]
        for offset in range(size):
            if stack:
                top = stack[-1]
                parent[offset] = top[0]
                if top[2] == -1:
                    first_child[top[0]] = offset
                else:
                    next_sibling[top[2]] = offset
                top[2] = offset
                top[1] -= 1
            count = n_children[offset]
            if count:
                stack.append([offset, count, -1])
            while stack and stack[-1][1] == 0:
                stack.pop()
        arena.parent = parent
        arena.first_child = first_child
        arena.next_sibling = next_sibling
        arena.roots = array("q", self.root_starts)
        store = ArenaStore(arena)
        store._names = []
        store._positions = {}
        for name in self.names:
            store._register(name)
        return store
