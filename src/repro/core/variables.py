"""Variables and variable domains of the YAT model (Section 2).

The paper distinguishes two kinds of variables:

* **data variables** label nodes and are instantiated by constants
  (symbols or atoms) or by other data variables with a smaller domain;
* **pattern variables** stand for whole pattern trees and are
  instantiated by patterns (ultimately by ground trees).

Every data variable has a *domain*. The default domain is "the set of
all data constants and variable names"; it can be restricted to atomic
types (``string``, ``int``, ...), to symbols, to explicit enumerations,
or to unions of those. Domains drive both instantiation checking
(Section 2) and the optional typing of YATL (Section 3.5).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from .labels import Label, Symbol, atom_type_name, is_atom, is_symbol, label_repr

# ---------------------------------------------------------------------------
# Domains
# ---------------------------------------------------------------------------


class Domain:
    """Abstract domain of a data variable.

    A domain answers two questions:

    * :meth:`contains` — is this constant a member?
    * :meth:`subset_of` — is this domain included in another one?
      (variable-by-variable instantiation requires domain inclusion).
    """

    def contains(self, value: Label) -> bool:
        raise NotImplementedError

    def subset_of(self, other: "Domain") -> bool:
        raise NotImplementedError

    def render(self) -> str:
        """Domain in YAT textual syntax (e.g. ``(string|int)``)."""
        raise NotImplementedError

    def intersects(self, other: "Domain") -> bool:
        """Could a constant belong to both domains? Used by the lenient
        compatibility check of program composition (Section 4.3)."""
        if isinstance(self, AnyDomain) or isinstance(other, AnyDomain):
            return True
        if self.subset_of(other) or other.subset_of(self):
            return True
        if isinstance(self, EnumDomain):
            return any(other.contains(value) for value in self.values)
        if isinstance(other, EnumDomain):
            return any(self.contains(value) for value in other.values)
        if isinstance(self, UnionDomain):
            return any(member.intersects(other) for member in self.members)
        if isinstance(other, UnionDomain):
            return any(self.intersects(member) for member in other.members)
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.render()})"

    def __or__(self, other: "Domain") -> "Domain":
        return union_domain([self, other])


class AnyDomain(Domain):
    """The default domain: every constant belongs to it."""

    _instance: Optional["AnyDomain"] = None

    def __new__(cls) -> "AnyDomain":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def contains(self, value: Label) -> bool:
        return is_symbol(value) or is_atom(value)

    def subset_of(self, other: Domain) -> bool:
        return isinstance(other, AnyDomain)

    def render(self) -> str:
        return "any"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyDomain)

    def __hash__(self) -> int:
        return hash(AnyDomain)


class AtomTypeDomain(Domain):
    """All atoms of one primitive type: ``string``, ``int``, ``float``, ``bool``."""

    NAMES = ("string", "int", "float", "bool")

    __slots__ = ("type_name",)

    def __init__(self, type_name: str) -> None:
        if type_name not in self.NAMES:
            raise ValueError(f"unknown atomic type {type_name!r}")
        self.type_name = type_name

    def contains(self, value: Label) -> bool:
        if not is_atom(value):
            return False
        name = atom_type_name(value)
        if self.type_name == "float" and name == "int":
            # ints are acceptable where floats are expected
            return True
        return name == self.type_name

    def subset_of(self, other: Domain) -> bool:
        if isinstance(other, AnyDomain):
            return True
        if isinstance(other, AtomTypeDomain):
            if other.type_name == self.type_name:
                return True
            return self.type_name == "int" and other.type_name == "float"
        if isinstance(other, UnionDomain):
            return any(self.subset_of(member) for member in other.members)
        return False

    def render(self) -> str:
        return self.type_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomTypeDomain) and other.type_name == self.type_name

    def __hash__(self) -> int:
        return hash((AtomTypeDomain, self.type_name))


class SymbolDomain(Domain):
    """All symbolic constants."""

    def contains(self, value: Label) -> bool:
        return is_symbol(value)

    def subset_of(self, other: Domain) -> bool:
        if isinstance(other, (AnyDomain, SymbolDomain)):
            return True
        if isinstance(other, UnionDomain):
            return any(self.subset_of(member) for member in other.members)
        return False

    def render(self) -> str:
        return "symbol"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymbolDomain)

    def __hash__(self) -> int:
        return hash(SymbolDomain)


class EnumDomain(Domain):
    """An explicit, finite set of constants.

    Used for label variables restricted to a few symbols, e.g. the
    variable ``X`` of rule Web4 whose domain is ``(set | bag)``.
    """

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Label]) -> None:
        vals = frozenset(values)
        if not vals:
            raise ValueError("enum domain may not be empty")
        self.values: FrozenSet[Label] = vals

    def contains(self, value: Label) -> bool:
        return value in self.values

    def subset_of(self, other: Domain) -> bool:
        return all(other.contains(value) for value in self.values)

    def render(self) -> str:
        parts = sorted(label_repr(value) for value in self.values)
        if len(parts) == 1:
            return parts[0]
        return "(" + "|".join(parts) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EnumDomain) and other.values == self.values

    def __hash__(self) -> int:
        return hash((EnumDomain, self.values))


class UnionDomain(Domain):
    """A union of other domains, e.g. ``(string | int | float | bool)``."""

    __slots__ = ("members",)

    def __init__(self, members: Iterable[Domain]) -> None:
        flat = []
        for member in members:
            if isinstance(member, UnionDomain):
                flat.extend(member.members)
            else:
                flat.append(member)
        if not flat:
            raise ValueError("union domain may not be empty")
        self.members: Tuple[Domain, ...] = tuple(flat)

    def contains(self, value: Label) -> bool:
        return any(member.contains(value) for member in self.members)

    def subset_of(self, other: Domain) -> bool:
        return all(member.subset_of(other) for member in self.members)

    def render(self) -> str:
        return "(" + "|".join(member.render() for member in self.members) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnionDomain) and set(other.members) == set(
            self.members
        )

    def __hash__(self) -> int:
        return hash((UnionDomain, frozenset(self.members)))


ANY = AnyDomain()
STRING = AtomTypeDomain("string")
INT = AtomTypeDomain("int")
FLOAT = AtomTypeDomain("float")
BOOL = AtomTypeDomain("bool")
SYMBOL = SymbolDomain()
ATOMIC = UnionDomain([STRING, INT, FLOAT, BOOL])


def union_domain(domains: Iterable[Domain]) -> Domain:
    """Build the union of *domains*, simplifying the trivial cases."""
    members = list(domains)
    if any(isinstance(domain, AnyDomain) for domain in members):
        return ANY
    if len(members) == 1:
        return members[0]
    return UnionDomain(members)


def enum(*values: Label) -> EnumDomain:
    """Shorthand for an :class:`EnumDomain` of symbols and atoms.

    Strings are treated as *symbol names* here since enum domains are
    almost always used to restrict label variables to symbols::

        enum("set", "bag")   # the domain of X in rule Web4
    """
    converted = [Symbol(v) if isinstance(v, str) else v for v in values]
    return EnumDomain(converted)


def domain_by_name(name: str) -> Domain:
    """Resolve a textual domain name (``string``, ``any``, ``symbol``...)."""
    table = {
        "string": STRING,
        "int": INT,
        "float": FLOAT,
        "bool": BOOL,
        "char": STRING,  # the paper's ODMG model mentions char; map to string
        "symbol": SYMBOL,
        "any": ANY,
        "atomic": ATOMIC,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(f"unknown domain name {name!r}") from None


# ---------------------------------------------------------------------------
# Variables
# ---------------------------------------------------------------------------


class Var:
    """A data variable with an optional restricted domain.

    Variables are compared *by name*: within one rule, every occurrence
    of ``SN`` denotes the same variable, which is how YATL expresses
    joins across body patterns (Section 3.2).
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Domain = ANY) -> None:
        if not name or not name[0].isupper() and name[0] != "_":
            raise ValueError(
                f"variable names start with an uppercase letter or '_': {name!r}"
            )
        self.name = name
        self.domain = domain

    def with_domain(self, domain: Domain) -> "Var":
        return Var(self.name, domain)

    def __repr__(self) -> str:
        if isinstance(self.domain, AnyDomain):
            return f"Var({self.name!r})"
        return f"Var({self.name!r}, {self.domain.render()})"

    def __str__(self) -> str:
        if isinstance(self.domain, AnyDomain):
            return self.name
        return f"{self.name}:{self.domain.render()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash((Var, self.name))


class PatternVar:
    """A pattern variable, instantiated by whole trees.

    ``domain_pattern`` optionally names the model pattern the variable
    ranges over (the paper writes this ``P2 : Ptype``). ``None`` means
    the variable may bind any tree (like ``Data`` in rule Web2).
    """

    __slots__ = ("name", "domain_pattern")

    def __init__(self, name: str, domain_pattern: Optional[str] = None) -> None:
        if not name or not name[0].isupper():
            raise ValueError(
                f"pattern variable names start with an uppercase letter: {name!r}"
            )
        self.name = name
        self.domain_pattern = domain_pattern

    def __repr__(self) -> str:
        if self.domain_pattern is None:
            return f"PatternVar({self.name!r})"
        return f"PatternVar({self.name!r}, {self.domain_pattern!r})"

    def __str__(self) -> str:
        if self.domain_pattern is None:
            return self.name
        return f"{self.name}:{self.domain_pattern}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PatternVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash((PatternVar, self.name))
