"""Synthetic workload generators (OPAL-shaped data at any scale)."""

from .generators import (
    brochure_elements,
    brochure_sgml,
    brochure_trees,
    car_object_store,
    dealer_database,
    deep_object_store,
    sales_matrix,
    supplier_pool,
)

__all__ = [
    "brochure_elements",
    "brochure_sgml",
    "brochure_trees",
    "car_object_store",
    "dealer_database",
    "deep_object_store",
    "sales_matrix",
    "supplier_pool",
]
