"""Synthetic workload generators (OPAL-shaped data at any scale)."""

from .generators import (
    brochure_elements,
    brochure_sgml,
    brochure_trees,
    car_object_store,
    dealer_database,
    dealer_document_program,
    dealer_document_store,
    deep_object_store,
    document_kind_names,
    sales_matrix,
    supplier_pool,
)

__all__ = [
    "brochure_elements",
    "brochure_sgml",
    "brochure_trees",
    "car_object_store",
    "dealer_database",
    "dealer_document_program",
    "dealer_document_store",
    "deep_object_store",
    "document_kind_names",
    "sales_matrix",
    "supplier_pool",
]
