"""Synthetic workload generators for the benchmarks and examples.

The OPAL project data the paper used is not available; these generators
produce the same *shapes* at configurable scale: SGML brochures with a
controllable duplicate-supplier ratio, the Section 3.2 relational dealer
database, ODMG object graphs of configurable size and depth, and sales
matrices for Rule 5. All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.trees import Tree
from ..objectdb.schema import ObjectSchema, car_dealer_schema
from ..objectdb.store import ObjectStore
from ..relational.database import Database
from ..relational.schema import dealer_schema
from ..sgml.document import Element, element

_CITIES = [
    ("Paris", 75005),
    ("Lyon", 69001),
    ("Lille", 59000),
    ("Nantes", 44000),
    ("Toulouse", 31000),
    ("Bordeaux", 33000),
]

_MODELS = ["Golf", "Golf GTI", "Polo", "Passat", "Beetle", "Corrado", "Vento"]


def supplier_pool(count: int, seed: int = 7) -> List[Tuple[str, str]]:
    """``count`` distinct (name, address) pairs."""
    rng = random.Random(seed)
    pool = []
    for index in range(count):
        city, zip_code = _CITIES[index % len(_CITIES)]
        name = f"VW dealer {index}"
        street = f"{rng.randint(1, 99)} Bd Lenoir"
        pool.append((name, f"{street}, {city} {zip_code + index % 97}"))
    return pool


def brochure_elements(
    count: int,
    suppliers_per_brochure: int = 2,
    distinct_suppliers: Optional[int] = None,
    seed: int = 7,
    old_ratio: float = 0.0,
) -> List[Element]:
    """SGML brochures conforming to the Section 3.1 DTD.

    ``distinct_suppliers`` controls the Skolem-sharing factor of Figure 3
    (suppliers appearing in several brochures); ``old_ratio`` is the
    fraction of brochures with ``model <= 1975`` that Rule 1's predicate
    filters out.
    """
    rng = random.Random(seed)
    pool = supplier_pool(distinct_suppliers or max(1, count // 2), seed)
    documents = []
    for index in range(1, count + 1):
        year = 1960 + rng.randint(0, 14) if rng.random() < old_ratio else (
            1976 + rng.randint(0, 22)
        )
        chosen = rng.sample(pool, min(suppliers_per_brochure, len(pool)))
        documents.append(
            element(
                "brochure",
                element("number", index),
                element("title", rng.choice(_MODELS)),
                element("model", year),
                element("desc", f"A described car number {index}"),
                element(
                    "spplrs",
                    *[
                        element("supplier", element("name", n), element("address", a))
                        for n, a in chosen
                    ],
                ),
            )
        )
    return documents


def brochure_sgml(
    count: int,
    suppliers_per_brochure: int = 2,
    distinct_suppliers: Optional[int] = None,
    seed: int = 7,
    old_ratio: float = 0.0,
) -> str:
    """The same brochures as serialized SGML text — the wire payload a
    ``repro serve`` client POSTs to ``/convert/<program>`` (also the
    load-driver payload in ``benchmarks/bench_serve.py``)."""
    from ..sgml.parser import write_sgml

    return "\n".join(
        write_sgml(doc)
        for doc in brochure_elements(
            count, suppliers_per_brochure, distinct_suppliers, seed, old_ratio
        )
    )


def brochure_trees(
    count: int,
    suppliers_per_brochure: int = 2,
    distinct_suppliers: Optional[int] = None,
    seed: int = 7,
    old_ratio: float = 0.0,
) -> List[Tree]:
    """The same brochures, directly as YAT trees (skipping SGML parsing).

    Matches the import wrapper's output exactly."""
    from ..wrappers.sgml import SgmlImportWrapper

    wrapper = SgmlImportWrapper()
    return [
        wrapper.element_to_tree(doc)
        for doc in brochure_elements(
            count, suppliers_per_brochure, distinct_suppliers, seed, old_ratio
        )
    ]


_KIND_BASES = [
    "pricelist",
    "invoice",
    "service_record",
    "warranty",
    "testdrive",
    "order",
    "delivery",
    "tradein",
    "inspection",
    "leasing",
]


def document_kind_names(count: int) -> List[str]:
    """``count`` distinct document-kind names, car-dealer flavoured —
    the heterogeneous document base of the dispatch-index and parallel
    benchmarks (price lists, invoices, service records...)."""
    return [
        f"{_KIND_BASES[i % len(_KIND_BASES)]}_{i // len(_KIND_BASES)}"
        for i in range(count)
    ]


def dealer_document_program(kinds: List[str]):
    """Rules 1+2 (brochures -> car/supplier objects) combined with one
    conversion rule per extra document kind the dealership produces."""
    from ..library.programs import BROCHURES_TEXT
    from ..yatl.parser import parse_program

    lines = [BROCHURES_TEXT.strip().rsplit("end", 1)[0]]
    for kind in kinds:
        lines.append(
            f"""
rule Conv_{kind}:
  P{kind}(Id) :
    class -> {kind} < -> id -> Id, -> amount -> A >
<=
  Pdoc_{kind} :
    {kind} < -> id -> Id, -> dealer -> Dl, -> amount -> A >
"""
        )
    lines.append("end")
    return parse_program("\n".join(lines))


def dealer_document_store(brochures: int, documents: int, kinds: List[str]):
    """A heterogeneous input store: brochures interleaved with the
    other document kinds, in a deterministic round-robin order."""
    from ..core.trees import DataStore, tree

    store = DataStore()
    for index, node in enumerate(brochure_trees(brochures, distinct_suppliers=10)):
        store.add(f"br{index}", node)
    for index in range(documents):
        kind = kinds[index % len(kinds)]
        node = tree(
            kind,
            tree("id", index),
            tree("dealer", f"VW dealer {index % 7}"),
            tree("amount", 100 + index % 900),
        )
        store.add(f"doc{index}", node)
    return store


def dealer_database(
    suppliers: int, cars: int, sales_per_car: int = 2, seed: int = 7
) -> Database:
    """The Section 3.2 relational database at scale. Car ``broch_num``
    values link to brochure numbers 1..cars."""
    rng = random.Random(seed)
    database = Database(dealer_schema())
    pool = supplier_pool(suppliers, seed)
    for sid, (name, full_address) in enumerate(pool, start=1):
        street, _, city_zip = full_address.partition(", ")
        city = " ".join(w for w in city_zip.split() if not w.isdigit())
        database.insert(
            "suppliers", sid, name, city, street, f"0{rng.randint(10**8, 10**9 - 1)}"
        )
    for cid in range(1, cars + 1):
        database.insert("cars", cid, str(cid))
    for cid in range(1, cars + 1):
        for _ in range(sales_per_car):
            database.insert(
                "sales",
                rng.randint(1, max(1, suppliers)),
                cid,
                1990 + rng.randint(0, 8),
                rng.randint(0, 500),
            )
    return database


def car_object_store(
    cars: int,
    suppliers: int,
    suppliers_per_car: int = 2,
    schema: Optional[ObjectSchema] = None,
    seed: int = 7,
) -> ObjectStore:
    """An ODMG store of cars referencing shared suppliers (the Golf
    database of Figure 2 at scale)."""
    rng = random.Random(seed)
    store = ObjectStore(schema or car_dealer_schema())
    pool = supplier_pool(suppliers, seed)
    supplier_oids = []
    for name, full_address in pool:
        _, _, city_zip = full_address.partition(", ")
        words = city_zip.split()
        city = " ".join(w for w in words if not w.isdigit())
        zip_code = next((w for w in words if w.isdigit()), "00000")
        instance = store.create(
            "supplier", {"name": name, "city": city, "zip": zip_code}
        )
        supplier_oids.append(instance.oid)
    for index in range(1, cars + 1):
        chosen = rng.sample(supplier_oids, min(suppliers_per_car, len(supplier_oids)))
        store.create(
            "car",
            {
                "name": f"{rng.choice(_MODELS)} #{index}",
                "desc": f"A described car number {index}",
                "suppliers": chosen,
            },
        )
    return store


def sales_matrix(rows: int, columns: int, seed: int = 7) -> Tree:
    """A ``rows x columns`` matrix tree for Rule 5 (Figure 4): columns
    are years, rows are car models, cells are sales counts."""
    rng = random.Random(seed)
    column_nodes = []
    for c in range(columns):
        cells = [
            Tree(f"model_{r}", (Tree(rng.randint(0, 1000)),)) for r in range(rows)
        ]
        column_nodes.append(Tree(1990 + c, cells))
    return Tree("matrix", column_nodes)


def deep_object_store(
    depth: int, fanout: int = 2, schema: Optional[ObjectSchema] = None
) -> ObjectStore:
    """A store exercising deep recursion in the O2Web program: nested
    tuples/lists down to ``depth`` levels under a single object."""
    from ..objectdb.types import STRING, list_of, tuple_of
    from ..objectdb.schema import ClassDef

    def nested_type(level: int):
        if level == 0:
            return STRING
        return list_of(nested_type(level - 1))

    def nested_value(level: int):
        if level == 0:
            return f"leaf@{level}"
        return [nested_value(level - 1) for _ in range(fanout)]

    schema = ObjectSchema(
        "deep", [ClassDef("node", [("payload", nested_type(depth))])]
    )
    store = ObjectStore(schema)
    store.create("node", {"payload": nested_value(depth)})
    return store
