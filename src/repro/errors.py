"""Exception hierarchy for the YAT system.

Every error raised by this package derives from :class:`YatError`, so
applications embedding the converter can catch a single base class. The
subclasses mirror the processing stages of the paper: model handling,
YATL parsing, rule evaluation, typing, and wrapper I/O.
"""

from __future__ import annotations


class YatError(Exception):
    """Base class of all errors raised by the YAT system."""


class ModelError(YatError):
    """A model or pattern is malformed (e.g. a union inside a union)."""


class InstantiationError(ModelError):
    """An instantiation check failed where success was required."""


class SyntaxYatError(YatError):
    """Problem while lexing or parsing YATL textual syntax."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)

    def __reduce__(self):
        # The default exception reduction replays __init__ with
        # self.args, which would re-append the location suffix; rebuild
        # from the finished message instead (worker processes ship
        # exceptions back pickled).
        return (_rebuild_error, (type(self), self.args, self.__dict__))


class EvaluationError(YatError):
    """A rule or program could not be evaluated."""


class NonDeterminismError(EvaluationError):
    """The same Skolem identifier was associated to two distinct values.

    Section 3.1 of the paper: "we accept potentially non-deterministic
    programs and alert the user at run time when the same pattern name is
    associated to two distinct values."
    """

    def __init__(self, skolem_key: str, message: str = "") -> None:
        self.skolem_key = skolem_key
        super().__init__(
            message
            or f"non-deterministic program: two distinct values for {skolem_key}"
        )

    def __reduce__(self):
        # args holds only the rendered message; replaying __init__ with
        # it would misplace it into skolem_key. See SyntaxYatError.
        return (_rebuild_error, (type(self), self.args, self.__dict__))


class DanglingReferenceError(EvaluationError):
    """A reference (&) points to an identifier no rule produced."""


class CyclicProgramError(EvaluationError):
    """The program was rejected by the cycle detector of Section 3.4."""


class UnconvertedDataError(EvaluationError):
    """Raised by the Rule Exception mechanism of Section 3.5.

    When run-time typing is on, input data matched by no conversion rule
    triggers this error instead of being silently ignored.
    """


class TypingError(YatError):
    """Static type checking (Section 3.5) failed."""


class CompositionError(YatError):
    """Two programs could not be composed (incompatible signatures)."""


class CustomizationError(YatError):
    """Program instantiation (Section 4.1) failed."""


class FunctionError(EvaluationError):
    """An external function or predicate is unknown or misbehaved."""


class WrapperError(YatError):
    """An import/export wrapper failed to translate data."""


class SchemaError(YatError):
    """A substrate schema (relational, ODMG, DTD) is invalid or violated."""


class LibraryError(YatError):
    """The program/model library could not save or load an item."""


def _rebuild_error(cls, args, state):
    """Unpickle helper for errors whose ``__init__`` signature differs
    from ``Exception.args`` (they carry extra positional context)."""
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(state)
    return error
