"""ODMG-style object database substrate (the "O2" of Figure 1)."""

from .types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    AtomicType,
    CollectionType,
    OType,
    RefType,
    TupleType,
    array_of,
    bag_of,
    list_of,
    ref,
    set_of,
    tuple_of,
)
from .schema import ClassDef, ObjectSchema, car_dealer_schema
from .store import ObjectInstance, ObjectStore, Oid
from .odl import parse_odl, render_odl
from .query import Query, QueryError, oql, parse_query

__all__ = [name for name in dir() if not name.startswith("_")]
