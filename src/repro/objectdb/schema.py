"""ODMG-style schemas: classes with ordered, typed attributes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import SchemaError
from .types import OType, RefType, CollectionType, TupleType


class ClassDef:
    """A class: a name plus ordered (attribute, type) pairs."""

    def __init__(self, name: str, attributes: Sequence[Tuple[str, OType]]) -> None:
        names = [n for n, _ in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"class {name!r} has duplicate attribute names")
        self.name = name
        self.attributes: Tuple[Tuple[str, OType], ...] = tuple(attributes)
        self._types: Dict[str, OType] = dict(attributes)

    def attribute_names(self) -> List[str]:
        return [n for n, _ in self.attributes]

    def attribute_type(self, name: str) -> OType:
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(
                f"class {self.name!r} has no attribute {name!r}"
            ) from None

    def __repr__(self) -> str:
        attrs = ", ".join(f"{n}: {t.render()}" for n, t in self.attributes)
        return f"ClassDef({self.name} {{{attrs}}})"


class ObjectSchema:
    """A set of class definitions with referential integrity checks."""

    def __init__(self, name: str, classes: Iterable[ClassDef] = ()) -> None:
        self.name = name
        self._classes: Dict[str, ClassDef] = {}
        for cls in classes:
            self.add(cls)

    def add(self, cls: ClassDef) -> None:
        if cls.name in self._classes:
            raise SchemaError(f"schema {self.name!r} already has class {cls.name!r}")
        self._classes[cls.name] = cls

    def cls(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no class {name!r}") from None

    def class_names(self) -> List[str]:
        return list(self._classes)

    def classes(self) -> List[ClassDef]:
        return list(self._classes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def check_references(self) -> None:
        """Every ref<C> must target a declared class."""
        missing = []

        def scan(otype: OType) -> None:
            if isinstance(otype, RefType):
                if otype.class_name not in self._classes:
                    missing.append(otype.class_name)
            elif isinstance(otype, CollectionType):
                scan(otype.element)
            elif isinstance(otype, TupleType):
                for _, field_type in otype.fields:
                    scan(field_type)

        for cls in self._classes.values():
            for _, otype in cls.attributes:
                scan(otype)
        if missing:
            raise SchemaError(
                f"schema {self.name!r} references undeclared class(es): "
                f"{sorted(set(missing))}"
            )

    def __repr__(self) -> str:
        return f"ObjectSchema({self.name!r}, classes={self.class_names()})"


def car_dealer_schema() -> ObjectSchema:
    """The ODMG schema of the Section 1 scenario: cars and suppliers
    (the Car Schema of Figure 2, with the cyclic ``sells`` variant of
    Rule 1' available as an extra attribute)."""
    from .types import STRING, ref, set_of

    schema = ObjectSchema(
        "car_dealer",
        [
            ClassDef(
                "car",
                [
                    ("name", STRING),
                    ("desc", STRING),
                    ("suppliers", set_of(ref("supplier"))),
                ],
            ),
            ClassDef(
                "supplier",
                [("name", STRING), ("city", STRING), ("zip", STRING)],
            ),
        ],
    )
    schema.check_references()
    return schema
