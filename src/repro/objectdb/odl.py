"""An ODL-style schema language for the object substrate.

The paper's scenario materializes into an O2/ODMG database whose schema
would be written in ODL. This module parses a pragmatic subset::

    class car {
      attribute string name;
      attribute string desc;
      attribute set<ref<supplier>> suppliers;
    };
    class supplier {
      attribute string name;
      attribute string city;
      attribute string zip;
    };

Types: ``string``/``int``/``float``/``bool``, ``ref<Class>``,
``set<T>``/``bag<T>``/``list<T>``/``array<T>``, and
``tuple<field: T, ...>``. The serializer :func:`render_odl` produces
text this parser accepts (round-trip tested).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..errors import SchemaError
from .schema import ClassDef, ObjectSchema
from .types import (
    AtomicType,
    CollectionType,
    OType,
    RefType,
    TupleType,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<word>[A-Za-z_][A-Za-z0-9_]*)|(?P<punct>[{}<>;:,])|(?P<bad>\S))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(text):
        if match.group("bad"):
            raise SchemaError(f"ODL syntax: unexpected {match.group('bad')!r}")
        tokens.append(match.group("word") or match.group("punct"))
    return tokens


class _Cursor:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        if token:
            self.pos += 1
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise SchemaError(f"ODL syntax: expected {token!r}, found {found!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def parse_odl(text: str, name: str = "schema") -> ObjectSchema:
    """Parse ODL text into an :class:`ObjectSchema` (with reference
    integrity checked)."""
    cursor = _Cursor(_tokenize(text))
    schema = ObjectSchema(name)
    while not cursor.at_end():
        schema.add(_parse_class(cursor))
        if cursor.peek() == ";":
            cursor.next()
    if not schema.class_names():
        raise SchemaError("ODL text declares no class")
    schema.check_references()
    return schema


def _parse_class(cursor: _Cursor) -> ClassDef:
    cursor.expect("class")
    name = cursor.next()
    if not name or not name[0].isalpha():
        raise SchemaError(f"ODL syntax: invalid class name {name!r}")
    cursor.expect("{")
    attributes: List[Tuple[str, OType]] = []
    while cursor.peek() != "}":
        keyword = cursor.next()
        if keyword not in ("attribute", "relationship"):
            raise SchemaError(
                f"ODL syntax: expected 'attribute' or 'relationship', "
                f"found {keyword!r}"
            )
        otype = _parse_type(cursor)
        attribute = cursor.next()
        if not attribute:
            raise SchemaError("ODL syntax: missing attribute name")
        cursor.expect(";")
        attributes.append((attribute, otype))
    cursor.expect("}")
    return ClassDef(name, attributes)


def _parse_type(cursor: _Cursor) -> OType:
    head = cursor.next()
    if head in AtomicType.NAMES:
        return AtomicType(head)
    if head == "char":  # the paper's ODMG model mentions char
        return AtomicType("string")
    if head in CollectionType.KINDS:
        cursor.expect("<")
        element = _parse_type(cursor)
        cursor.expect(">")
        return CollectionType(head, element)
    if head == "ref":
        cursor.expect("<")
        class_name = cursor.next()
        cursor.expect(">")
        return RefType(class_name)
    if head == "tuple":
        cursor.expect("<")
        fields: List[Tuple[str, OType]] = []
        while True:
            field = cursor.next()
            cursor.expect(":")
            fields.append((field, _parse_type(cursor)))
            if cursor.peek() == ",":
                cursor.next()
                continue
            break
        cursor.expect(">")
        return TupleType(fields)
    # a bare class name is shorthand for a reference
    if head and head[0].isalpha():
        return RefType(head)
    raise SchemaError(f"ODL syntax: expected a type, found {head!r}")


def render_odl(schema: ObjectSchema) -> str:
    """Serialize a schema back to ODL text (re-parseable)."""
    blocks = []
    for cls in schema.classes():
        lines = [f"class {cls.name} {{"]
        for attribute, otype in cls.attributes:
            lines.append(f"  attribute {otype.render()} {attribute};")
        lines.append("};")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"
