"""ODMG-style value types for the object substrate.

The type system mirrors the ODMG model of Figure 2: atomic types,
collections (set, bag, list, array), tuples (structs) and references to
class objects.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import SchemaError


class OType:
    """Abstract value type."""

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.render()})"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.render() == other.render()

    def __hash__(self) -> int:
        return hash((type(self), self.render()))


class AtomicType(OType):
    NAMES = ("string", "int", "float", "bool")

    def __init__(self, name: str) -> None:
        if name not in self.NAMES:
            raise SchemaError(f"unknown atomic type {name!r}")
        self.name = name

    def render(self) -> str:
        return self.name

    def accepts(self, value: object) -> bool:
        if self.name == "bool":
            return isinstance(value, bool)
        if self.name == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.name == "float":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)


class CollectionType(OType):
    KINDS = ("set", "bag", "list", "array")

    def __init__(self, kind: str, element: OType) -> None:
        if kind not in self.KINDS:
            raise SchemaError(f"unknown collection kind {kind!r}")
        self.kind = kind
        self.element = element

    def render(self) -> str:
        return f"{self.kind}<{self.element.render()}>"

    @property
    def ordered(self) -> bool:
        return self.kind in ("list", "array")

    @property
    def distinct(self) -> bool:
        return self.kind == "set"


class TupleType(OType):
    def __init__(self, fields: Sequence[Tuple[str, OType]]) -> None:
        names = [n for n, _ in fields]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate tuple field names")
        self.fields: Tuple[Tuple[str, OType], ...] = tuple(fields)

    def render(self) -> str:
        inner = ", ".join(f"{n}: {t.render()}" for n, t in self.fields)
        return f"tuple<{inner}>"

    def field(self, name: str) -> OType:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise SchemaError(f"tuple has no field {name!r}")


class RefType(OType):
    def __init__(self, class_name: str) -> None:
        self.class_name = class_name

    def render(self) -> str:
        return f"ref<{self.class_name}>"


STRING = AtomicType("string")
INT = AtomicType("int")
FLOAT = AtomicType("float")
BOOL = AtomicType("bool")


def set_of(element: OType) -> CollectionType:
    return CollectionType("set", element)


def bag_of(element: OType) -> CollectionType:
    return CollectionType("bag", element)


def list_of(element: OType) -> CollectionType:
    return CollectionType("list", element)


def array_of(element: OType) -> CollectionType:
    return CollectionType("array", element)


def ref(class_name: str) -> RefType:
    return RefType(class_name)


def tuple_of(**fields: OType) -> TupleType:
    return TupleType(list(fields.items()))
