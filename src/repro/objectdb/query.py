"""A small OQL-style query engine over the object store.

The paper's target database (O2) is queried with OQL; this module
provides the subset the examples and tests use to inspect conversion
output::

    select c.name, s.city
    from car c, supplier s
    where s in c.suppliers and c.name != "Polo"
    order by c.name

Supported: multi-variable ``from`` over class extents, dotted path
expressions with automatic reference dereferencing, comparison and
membership predicates joined by ``and``, and ``order by``. Results are
lists of tuples (one value per ``select`` item).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from .store import ObjectInstance, ObjectStore, Oid

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op><=|>=|!=|=|<|>|\.|,|\*)
      | (?P<bad>\S)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "in", "order", "by", "true", "false"}


class QueryError(SchemaError):
    """Malformed query text or evaluation failure."""


def _tokenize(text: str):
    tokens: List[Tuple[str, object]] = []
    for match in _TOKEN_RE.finditer(text):
        if match.group("bad"):
            raise QueryError(f"OQL syntax: unexpected {match.group('bad')!r}")
        if match.group("string") is not None:
            raw = match.group("string")[1:-1]
            tokens.append(("lit", raw.replace('\\"', '"').replace("\\\\", "\\")))
        elif match.group("number") is not None:
            raw = match.group("number")
            tokens.append(("lit", float(raw) if "." in raw else int(raw)))
        else:
            word = match.group("word") or match.group("op")
            if word == "true":
                tokens.append(("lit", True))
            elif word == "false":
                tokens.append(("lit", False))
            elif word in _KEYWORDS:
                tokens.append(("kw", word))
            elif match.group("word"):
                tokens.append(("name", word))
            else:
                tokens.append(("op", word))
    return tokens


class Path:
    """A dotted path expression: variable followed by attribute steps."""

    def __init__(self, var: str, steps: Sequence[str]) -> None:
        self.var = var
        self.steps = tuple(steps)

    def __repr__(self) -> str:
        return ".".join((self.var,) + self.steps)


class Condition:
    def __init__(self, left: object, op: str, right: object) -> None:
        self.left = left
        self.op = op
        self.right = right


class Query:
    """A parsed query, evaluated against an :class:`ObjectStore`."""

    def __init__(
        self,
        select: Sequence[Union[Path, str]],
        sources: Sequence[Tuple[str, str]],
        conditions: Sequence[Condition] = (),
        order_by: Optional[Path] = None,
    ) -> None:
        self.select = list(select)
        self.sources = list(sources)  # (class name, variable)
        self.conditions = list(conditions)
        self.order_by = order_by

    # -- evaluation -----------------------------------------------------------

    def run(self, store: ObjectStore) -> List[Tuple]:
        variables = [var for _, var in self.sources]
        if len(set(variables)) != len(variables):
            raise QueryError("duplicate variables in 'from'")
        rows: List[Tuple] = []
        envs: List[Dict[str, ObjectInstance]] = [{}]
        for class_name, var in self.sources:
            extent = store.extent(class_name)
            envs = [
                {**env, var: instance} for env in envs for instance in extent
            ]
        for env in envs:
            if all(self._holds(cond, env, store) for cond in self.conditions):
                rows.append(tuple(
                    self._value(item, env, store) for item in self.select
                ))
        if self.order_by is not None:
            rows_with_keys = [
                (self._path_value(self.order_by, env, store), row)
                for env, row in self._kept_envs(store)
            ]
            rows_with_keys.sort(key=lambda pair: _sort_key(pair[0]))
            rows = [row for _, row in rows_with_keys]
        return rows

    def _kept_envs(self, store: ObjectStore):
        envs: List[Dict[str, ObjectInstance]] = [{}]
        for class_name, var in self.sources:
            extent = store.extent(class_name)
            envs = [
                {**env, var: instance} for env in envs for instance in extent
            ]
        for env in envs:
            if all(self._holds(cond, env, store) for cond in self.conditions):
                yield env, tuple(
                    self._value(item, env, store) for item in self.select
                )

    def _value(self, item, env, store):
        if isinstance(item, Path):
            return self._path_value(item, env, store)
        if item == "*":
            return tuple(env[var].oid for _, var in self.sources)
        raise QueryError(f"unknown select item {item!r}")

    def _path_value(self, path: Path, env, store: ObjectStore):
        if path.var not in env:
            raise QueryError(f"unknown variable {path.var!r}")
        current: object = env[path.var]
        for step in path.steps:
            if isinstance(current, Oid):
                current = store.get(current)
            if isinstance(current, ObjectInstance):
                current = current.get(step)
            elif isinstance(current, dict):
                if step not in current:
                    raise QueryError(f"tuple has no field {step!r}")
                current = current[step]
            else:
                raise QueryError(
                    f"cannot navigate {step!r} from {type(current).__name__}"
                )
        return current

    def _operand(self, operand, env, store):
        if isinstance(operand, Path):
            return self._path_value(operand, env, store)
        return operand

    def _holds(self, cond: Condition, env, store) -> bool:
        left = self._operand(cond.left, env, store)
        right = self._operand(cond.right, env, store)
        if cond.op == "in":
            if isinstance(left, ObjectInstance):
                left = left.oid
            if not isinstance(right, (list, tuple)):
                raise QueryError("'in' expects a collection on the right")
            return left in right
        left = left.oid if isinstance(left, ObjectInstance) else left
        right = right.oid if isinstance(right, ObjectInstance) else right
        if cond.op == "=":
            return left == right
        if cond.op == "!=":
            return left != right
        try:
            if cond.op == "<":
                return left < right  # type: ignore[operator]
            if cond.op == "<=":
                return left <= right  # type: ignore[operator]
            if cond.op == ">":
                return left > right  # type: ignore[operator]
            if cond.op == ">=":
                return left >= right  # type: ignore[operator]
        except TypeError:
            return False
        raise QueryError(f"unknown operator {cond.op!r}")


def _sort_key(value) -> Tuple:
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_query(text: str) -> Query:
    tokens = _tokenize(text)
    cursor = 0

    def peek():
        return tokens[cursor] if cursor < len(tokens) else ("eof", None)

    def advance():
        nonlocal cursor
        token = peek()
        cursor += 1
        return token

    def expect_kw(word):
        kind, value = advance()
        if kind != "kw" or value != word:
            raise QueryError(f"OQL syntax: expected {word!r}, found {value!r}")

    def parse_path() -> Path:
        kind, value = advance()
        if kind != "name":
            raise QueryError(f"OQL syntax: expected a path, found {value!r}")
        steps = []
        while peek() == ("op", "."):
            advance()
            step_kind, step = advance()
            if step_kind != "name":
                raise QueryError(f"OQL syntax: bad path step {step!r}")
            steps.append(step)
        return Path(value, steps)

    def parse_operand():
        kind, value = peek()
        if kind == "lit":
            advance()
            return value
        return parse_path()

    # select
    expect_kw("select")
    select: List[Union[Path, str]] = []
    if peek() == ("op", "*"):
        advance()
        select.append("*")
    else:
        while True:
            select.append(parse_path())
            if peek() == ("op", ","):
                advance()
                continue
            break

    # from
    expect_kw("from")
    sources: List[Tuple[str, str]] = []
    while True:
        kind, class_name = advance()
        if kind != "name":
            raise QueryError(f"OQL syntax: expected a class name, found {class_name!r}")
        kind, var = advance()
        if kind != "name":
            raise QueryError(f"OQL syntax: expected a variable, found {var!r}")
        sources.append((class_name, var))
        if peek() == ("op", ","):
            advance()
            continue
        break

    # where
    conditions: List[Condition] = []
    if peek() == ("kw", "where"):
        advance()
        while True:
            left = parse_operand()
            kind, op = peek()
            if (kind, op) == ("kw", "in"):
                advance()
                op = "in"
            elif kind == "op" and op in ("=", "!=", "<", "<=", ">", ">="):
                advance()
            else:
                raise QueryError(f"OQL syntax: expected an operator, found {op!r}")
            right = parse_operand()
            conditions.append(Condition(left, op, right))
            if peek() == ("kw", "and"):
                advance()
                continue
            break

    # order by
    order_by = None
    if peek() == ("kw", "order"):
        advance()
        expect_kw("by")
        order_by = parse_path()

    if peek()[0] != "eof":
        raise QueryError(f"OQL syntax: trailing input {peek()[1]!r}")
    return Query(select, sources, conditions, order_by)


def oql(store: ObjectStore, text: str) -> List[Tuple]:
    """Parse and run a query in one call."""
    return parse_query(text).run(store)
