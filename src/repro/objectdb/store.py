"""The object store: OIDs, extents, typed values (the "O2" of Figure 1).

Values are plain Python data validated against the schema types:

* atomic types → ``str``/``int``/``float``/``bool``;
* ``set``/``bag``/``list``/``array`` → Python lists (sets keep their
  distinctness checked, order is preserved for determinism);
* tuples → ``dict`` keyed by field name;
* ``ref<C>`` → :class:`Oid`.

Cyclic object graphs are supported (car ↔ supplier), which is why
validation of references only checks class membership, not reachability.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import SchemaError
from .schema import ObjectSchema
from .types import AtomicType, CollectionType, OType, RefType, TupleType


class Oid:
    """An object identifier, unique within one store."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Oid({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Oid) and other.value == self.value

    def __hash__(self) -> int:
        return hash((Oid, self.value))


class ObjectInstance:
    """An object: a class name, an OID and attribute values."""

    __slots__ = ("oid", "class_name", "values")

    def __init__(self, oid: Oid, class_name: str, values: Dict[str, object]) -> None:
        self.oid = oid
        self.class_name = class_name
        self.values = values

    def get(self, attribute: str) -> object:
        try:
            return self.values[attribute]
        except KeyError:
            raise SchemaError(
                f"object {self.oid} has no attribute {attribute!r}"
            ) from None

    def __repr__(self) -> str:
        return f"ObjectInstance({self.oid}, {self.class_name!r})"


class ObjectStore:
    """Objects under a schema, organized in per-class extents."""

    def __init__(self, schema: ObjectSchema) -> None:
        self.schema = schema
        self._objects: Dict[Oid, ObjectInstance] = {}
        self._extents: Dict[str, List[Oid]] = {c: [] for c in schema.class_names()}
        self._counter = 0

    # -- creation -------------------------------------------------------------

    def new_oid(self, class_name: str) -> Oid:
        self._counter += 1
        return Oid(f"{class_name[:1]}{self._counter}")

    def create(
        self,
        class_name: str,
        values: Dict[str, object],
        oid: Optional[Oid] = None,
        defer_ref_check: bool = False,
    ) -> ObjectInstance:
        """Create an object; values are validated against the class.

        ``defer_ref_check`` allows forward references while loading a
        cyclic object graph; call :meth:`check_references` afterwards.
        """
        cls = self.schema.cls(class_name)
        if oid is None:
            oid = self.new_oid(class_name)
        if oid in self._objects:
            raise SchemaError(f"duplicate oid {oid}")
        missing = set(cls.attribute_names()) - set(values)
        if missing:
            raise SchemaError(
                f"class {class_name!r}: missing attribute(s) {sorted(missing)}"
            )
        extra = set(values) - set(cls.attribute_names())
        if extra:
            raise SchemaError(
                f"class {class_name!r}: unknown attribute(s) {sorted(extra)}"
            )
        for name, otype in cls.attributes:
            self._validate(values[name], otype, f"{class_name}.{name}", defer_ref_check)
        instance = ObjectInstance(oid, class_name, dict(values))
        self._objects[oid] = instance
        self._extents[class_name].append(oid)
        return instance

    def _validate(
        self, value: object, otype: OType, path: str, defer_ref_check: bool
    ) -> None:
        if isinstance(otype, AtomicType):
            if not otype.accepts(value):
                raise SchemaError(
                    f"{path}: {value!r} is not a valid {otype.render()}"
                )
        elif isinstance(otype, CollectionType):
            if not isinstance(value, (list, tuple)):
                raise SchemaError(f"{path}: expected a collection, got {value!r}")
            for index, item in enumerate(value):
                self._validate(item, otype.element, f"{path}[{index}]", defer_ref_check)
            if otype.distinct:
                canonical = [repr(v) for v in value]
                if len(set(canonical)) != len(canonical):
                    raise SchemaError(f"{path}: duplicate elements in a set")
        elif isinstance(otype, TupleType):
            if not isinstance(value, dict):
                raise SchemaError(f"{path}: expected a tuple dict, got {value!r}")
            for name, field_type in otype.fields:
                if name not in value:
                    raise SchemaError(f"{path}: missing tuple field {name!r}")
                self._validate(value[name], field_type, f"{path}.{name}", defer_ref_check)
        elif isinstance(otype, RefType):
            if not isinstance(value, Oid):
                raise SchemaError(f"{path}: expected a reference, got {value!r}")
            if not defer_ref_check:
                target = self._objects.get(value)
                if target is None:
                    raise SchemaError(f"{path}: dangling reference {value}")
                if target.class_name != otype.class_name:
                    raise SchemaError(
                        f"{path}: reference to {target.class_name!r}, expected "
                        f"{otype.class_name!r}"
                    )
        else:  # pragma: no cover - exhaustive
            raise SchemaError(f"unknown type {otype!r}")

    # -- access ---------------------------------------------------------------

    def get(self, oid: Oid) -> ObjectInstance:
        try:
            return self._objects[oid]
        except KeyError:
            raise SchemaError(f"no object {oid}") from None

    def extent(self, class_name: str) -> List[ObjectInstance]:
        self.schema.cls(class_name)
        return [self._objects[oid] for oid in self._extents[class_name]]

    def objects(self) -> List[ObjectInstance]:
        return list(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[ObjectInstance]:
        return iter(self._objects.values())

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._objects

    # -- integrity --------------------------------------------------------------

    def check_references(self) -> None:
        """Re-validate every reference (after deferred loading)."""
        for instance in self._objects.values():
            cls = self.schema.cls(instance.class_name)
            for name, otype in cls.attributes:
                self._validate(
                    instance.values[name],
                    otype,
                    f"{instance.class_name}.{name}",
                    defer_ref_check=False,
                )

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{c}({len(oids)})" for c, oids in self._extents.items()
        )
        return f"ObjectStore({self.schema.name!r}: {sizes})"
