"""Ordered collections and arrays (Section 3.3, Figure 4).

Rule 5 transposes any input matrix using index edges to capture the
original ordering of children, and Rule 4 builds an ordered,
duplicate-free list of suppliers. Run with
``python examples/matrix_transpose.py``.
"""

from repro import tree, atom
from repro.library import matrix_transpose_program, supplier_list_program
from repro.workloads import sales_matrix


def main():
    # --- Figure 4: transposing a matrix of car sales statistics -----------
    matrix = tree(
        "matrix",
        tree(1995, tree("golf", atom(10)), tree("polo", atom(20)),
             tree("passat", atom(30))),
        tree(1996, tree("golf", atom(11)), tree("polo", atom(21)),
             tree("passat", atom(31))),
    )
    program = matrix_transpose_program()
    print("=== Rule 5 (Figure 4) ===\n")
    print(program.rule("Rule5"))
    print("\ninput (years -> models):")
    print(matrix)
    transposed = program.run([matrix]).trees_of("New")[0]
    print("\ntransposed (models -> years):")
    print(transposed)

    # involution check on a bigger random matrix
    big = sales_matrix(rows=5, columns=4)
    once = program.run([big]).trees_of("New")[0]
    twice = program.run([once]).trees_of("New")[0]
    assert twice == big
    print("\ntransposing twice is the identity on a 5x4 matrix: OK")

    # --- Rule 4: an ODMG list ordered by supplier name ---------------------
    brochure = tree(
        "brochure",
        tree("number", atom(2)),
        tree("title", atom("Golf")),
        tree("model", atom(1997)),
        tree("desc", atom("d")),
        tree(
            "spplrs",
            tree("supplier", tree("name", atom("Zanardi")), tree("address", atom("x"))),
            tree("supplier", tree("name", atom("Alpha")), tree("address", atom("y"))),
            tree("supplier", tree("name", atom("Zanardi")), tree("address", atom("x"))),
        ),
    )
    listing_program = supplier_list_program()
    result = listing_program.run([brochure])
    print("\n=== Rule 4: grouped and ordered list ===\n")
    print(listing_program.rule("Rule4"))
    print("\noutput list (duplicates removed, ordered by name):")
    listing = result.trees_of("Sups")[0]
    print(listing)
    for ref in listing.children:
        functor, args = result.skolems.key_of(ref.target)
        print(f"  {ref} = {functor}{args}")


if __name__ == "__main__":
    main()
