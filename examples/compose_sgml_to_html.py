"""Program composition (Section 4.3): SGML to HTML in one step.

Composes the SGML → ODMG program (Rules 1 and 2) with the ODMG → HTML
program (Web1–Web6), producing the paper's Rule (2+WebCar') — a direct
conversion that never materializes the intermediate ODMG patterns —
then checks the composed program produces exactly what the two-step
pipeline produces, and times both.

Run with ``python examples/compose_sgml_to_html.py [n_brochures]``.
"""

import sys
import time

from repro import YatSystem
from repro.workloads import brochure_trees


def main(count=50):
    system = YatSystem()
    to_odmg = system.import_program("SgmlBrochuresToOdmg")
    web = system.import_program("O2Web")

    composed = system.compose(to_odmg, web, name="SgmlToHtml")
    print("=== the composed program (Section 4.3) ===\n")
    print(composed)

    inputs = brochure_trees(count, distinct_suppliers=max(2, count // 4))

    start = time.perf_counter()
    intermediate = system.run(to_odmg, inputs)
    two_step = system.run(web, intermediate.store)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    one_step = system.run(composed, inputs)
    composed_s = time.perf_counter() - start

    def pages(result):
        return sorted(
            str(result.store.materialize(i)) for i in result.ids_of("HtmlPage")
        )

    assert pages(two_step) == pages(one_step), "composition changed the output!"

    print(f"\n{count} brochures -> {len(one_step.ids_of('HtmlPage'))} HTML pages")
    print(f"sequential (materialized ODMG): {sequential_s * 1000:7.1f} ms")
    print(f"composed   (one-step)         : {composed_s * 1000:7.1f} ms")
    print(f"speedup: {sequential_s / composed_s:.2f}x — the composed program "
          f"avoids creating the intermediate ODMG patterns")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
