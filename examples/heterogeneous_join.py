"""Dealing with heterogeneity (Section 3.2, Rule 3).

One rule takes its data from two distinct sources — the relational
dealer database and the SGML brochures — joining them through the
shared ``SN`` and ``Num`` variables and reconciling address formats
with the ``sameaddress`` external function.

Run with ``python examples/heterogeneous_join.py``.
"""

from repro import YatSystem
from repro.library import brochures_rule3_program
from repro.sgml import brochure_dtd
from repro.workloads import brochure_elements, dealer_database


def main():
    system = YatSystem()
    program = brochures_rule3_program()
    print("=== Rule 3 (Section 3.2) ===\n")
    print(program.rule("Rule3"))

    database = dealer_database(suppliers=4, cars=8)
    documents = brochure_elements(8, distinct_suppliers=4,
                                  suppliers_per_brochure=1)

    # numbers stay strings so brochure Num joins the string broch_num
    sgml_store = system.import_sgml(documents, brochure_dtd(),
                                    coerce_numbers=False)
    rel_store = system.import_relational(database)
    merged = system.merge_stores(sgml_store, rel_store)

    result = system.run(program, merged)
    cars = result.ids_of("Pcar")
    print(f"\n{len(documents)} brochures x {len(database.table('suppliers'))} "
          f"relational suppliers -> {len(cars)} integrated car objects\n")
    for identifier in cars[:3]:
        functor, args = result.skolems.key_of(identifier)
        print(f"--- {identifier} = {functor}{args}  (keyed by relational cid)")
        print(result.tree(identifier))
        print()
    print("Each car references Psup(Sid) objects keyed by the relational id;")
    print("'sameaddress' matched the SGML one-line address against the")
    print("(address, city) pair stored in the relational database.")


if __name__ == "__main__":
    main()
