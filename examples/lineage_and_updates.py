"""Lineage and update propagation (the paper's future-work directions).

The paper closes with: "Efficient querying of the target data
representation (without materializing it) as well as the management of
updates of both source and target data will be considered in future
works." This example shows the building blocks this reproduction
provides for both:

* **targeted evaluation** — materialize only the outputs a query needs;
* **provenance** — which source documents each integrated object
  derives from;
* **update propagation** — which outputs must be recomputed when a
  source changes, and what actually changed downstream.

Run with ``python examples/lineage_and_updates.py``.
"""

from repro import YatSystem
from repro.core import DataStore
from repro.workloads import brochure_trees
from repro.yatl.updates import affected_outputs, diff_results


def main():
    system = YatSystem()
    program = system.import_program("SgmlBrochuresToOdmg")

    trees = brochure_trees(6, distinct_suppliers=3)
    store = DataStore({f"b{i}": t for i, t in enumerate(trees, start=1)})

    # --- targeted evaluation: query the suppliers only ---------------------
    suppliers = program.query(store, "Psup")
    print(f"query Psup: {len(suppliers)} supplier objects materialized, "
          f"no car objects built\n")

    # --- provenance ---------------------------------------------------------
    result = program.run(store)
    print("lineage of each supplier object (which brochures mention it):")
    for identifier in result.ids_of("Psup"):
        functor, args = result.skolems.key_of(identifier)
        origins = ", ".join(sorted(result.lineage(identifier)))
        print(f"  {identifier} = Psup({args[0]!r})  <-  {origins}")

    # --- update propagation --------------------------------------------------
    changed = "b2"
    affected = affected_outputs(result, [changed])
    print(f"\nif {changed} changes, recompute: {sorted(affected)} "
          f"(everything else is safe to keep)")

    updated_store = store.copy()
    updated_trees = brochure_trees(6, distinct_suppliers=3, seed=99)
    updated_store.add(changed, updated_trees[0])
    new_result = program.run(updated_store)
    diff = diff_results(result, new_result)
    print(f"after the update, downstream diff: {diff.summary()}")


if __name__ == "__main__":
    main()
