"""Quickstart: write a YATL rule, convert data, inspect the result.

Reproduces Figure 3 of the paper: applying Rule 1 (and Rule 2) on two
SGML brochures. Run with ``python examples/quickstart.py``.
"""

from repro import parse_program, tree, atom


def brochure(num, title, year, desc, suppliers):
    """A brochure as the SGML import wrapper would deliver it."""
    return tree(
        "brochure",
        tree("number", atom(num)),
        tree("title", atom(title)),
        tree("model", atom(year)),
        tree("desc", atom(desc)),
        tree(
            "spplrs",
            *[
                tree("supplier", tree("name", atom(n)), tree("address", atom(a)))
                for n, a in suppliers
            ],
        ),
    )


PROGRAM = """
program SgmlToOdmg

rule Rule1:
  Psup(SN) :
    class -> supplier < -> name -> SN,
                        -> city -> C,
                        -> zip -> Z >
<=
  Pbr :
    brochure < -> number -> Num,
               -> title -> T,
               -> model -> Year,
               -> desc -> D,
               -> spplrs *-> supplier < -> name -> SN,
                                         -> address -> Add > >,
  Year > 1975,
  C is city(Add),
  Z is zip(Add)

rule Rule2:
  Pcar(Pbr) :
    class -> car < -> name -> T,
                   -> desc -> D,
                   -> suppliers -> set {}-> &Psup(SN) >
<=
  Pbr :
    brochure < -> number -> Num,
               -> title -> T,
               -> model -> Year,
               -> desc -> D,
               -> spplrs *-> supplier < -> name -> SN,
                                         -> address -> Add > >

end
"""


def main():
    program = parse_program(PROGRAM)

    b1 = brochure(1, "Golf", 1995, "A great car",
                  [("VW center", "Bd Lenoir, Paris 75005")])
    b2 = brochure(2, "Golf", 1997, "A great car",
                  [("VW2", "Bd Leblanc, Lyon 69001"),
                   ("VW center", "Bd Lenoir, Paris 75005")])

    result = program.run([b1, b2])

    print("=== Figure 3: applying Rule 1 (and Rule 2) on two brochures ===\n")
    for name, node in result.store:
        functor, args = result.skolems.key_of(name)
        print(f"--- {name} = {functor}(...)")
        print(node)
        print()
    print("Note: 'VW center' appears in both brochures but the Skolem")
    print("function Psup(SN) created a single supplier object s1.")


if __name__ == "__main__":
    main()
