"""The Figure 1 scenario end to end: the car dealer intranet.

A relational database holds the dealers; SGML documents describe the
cars. Everything is integrated into an ODMG object base and published
as HTML pages — exactly the application sketched in the paper's
introduction. Run with ``python examples/car_dealer_intranet.py [outdir]``.
"""

import os
import sys

from repro import YatSystem
from repro.objectdb import car_dealer_schema
from repro.sgml import brochure_dtd, write_sgml
from repro.workloads import brochure_elements, dealer_database


def main(out_dir=None):
    system = YatSystem()

    # --- sources ----------------------------------------------------------
    documents = brochure_elements(6, distinct_suppliers=3)
    database = dealer_database(suppliers=3, cars=6)
    print(f"sources: {len(documents)} SGML brochures + {database!r}\n")
    print("first brochure:")
    print(write_sgml(documents[0]))

    # --- (1) integrate into the object database ---------------------------
    to_odmg = system.import_program("SgmlBrochuresToOdmg")
    system.type_check(to_odmg)  # optional, on demand (Section 3.5)
    objects = system.translate_to_objects(
        to_odmg,
        car_dealer_schema(),
        sgml_documents=documents,
        dtd=brochure_dtd(),
    )
    print(f"\n(1) materialized object base: {objects!r}")

    # --- (2) publish to HTML ----------------------------------------------
    web = system.import_program("O2Web")
    pages = system.publish_to_html(web, objects)
    print(f"(2) generated {len(pages)} HTML pages")

    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        for url, text in pages.items():
            with open(os.path.join(out_dir, url), "w") as handle:
                handle.write(text)
        print(f"pages written to {out_dir}/")
    else:
        sample_url = sorted(pages)[0]
        print(f"\nsample page {sample_url}:\n")
        print(pages[sample_url])


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
