"""An SLO breach firing and resolving, end to end.

Starts the mediator daemon in-process with one burn-rate rule
("95% of requests succeed over a 60s window"), drives it with the
paper's brochure workload, then injects a burst of failing requests.
Every history tick uses a synthetic timestamp, so the whole
pending → firing → resolved story plays out deterministically in
milliseconds of wall time — the same mechanism the test suite uses.

Run with ``python examples/slo_breach_demo.py``.
"""

import json
import time
import urllib.error
import urllib.request

from repro.obs.alerts import parse_rule
from repro.serve import MediatorServer, verdict_line
from repro.workloads import brochure_sgml

PROGRAM = "SgmlBrochuresToOdmg"


def post(base, program, payload):
    request = urllib.request.Request(
        f"{base}/convert/{program}", data=payload.encode()
    )
    try:
        urllib.request.urlopen(request).read()
    except urllib.error.HTTPError:
        pass  # a 404 on a bogus program is the point: it burns budget


def fetch_alerts(base):
    with urllib.request.urlopen(f"{base}/alerts") as response:
        return json.loads(response.read().decode("utf-8"))


def main():
    rule = parse_rule({
        "name": "availability-slo",
        "objective": 0.95,          # 5% error budget
        "window": "60s",
        "short_window": "10s",
        "max_burn_rate": 2.0,
        "severity": "page",
    })
    server = MediatorServer(
        port=0, warm=False,
        history_interval_s=3600,    # ticks below are all synthetic
        alert_rules=[rule],
    )
    server.warm_now()
    server.start()
    base = f"http://127.0.0.1:{server.port}"
    payload = brochure_sgml(3, distinct_suppliers=2)
    # Synthetic ticks advance in 5 "second" steps from the real start
    # time (the sampler's startup tick is real, so the fake clock must
    # stay consistent with it), but no wall time actually passes.
    epoch = time.time()
    clock = epoch

    def tick(label):
        nonlocal clock
        clock += 5.0
        server.history.sample(at=clock)
        doc = fetch_alerts(base)
        print(f"[t+{clock - epoch:>4.0f}s] {label:<28} "
              f"{verdict_line(doc)}")
        return doc

    try:
        print(f"daemon on {base} with rule: {rule.describe()}\n")
        for _ in range(4):
            post(base, PROGRAM, payload)
        tick("healthy traffic")

        # Burst of failures: a bogus program name 404s, and each 404
        # burns error budget. Two ticks of this exceeds a 2.0 burn
        # rate on both the 60s and 10s windows.
        for _ in range(2):
            for _ in range(3):
                post(base, "NoSuchProgram", payload)
            post(base, PROGRAM, payload)
            tick("error burst")

        # Recovery: clean traffic only. The 10s confirmation window
        # goes quiet first, and the rule needs BOTH windows burning,
        # so the alert resolves while the 60s window is still hot.
        for _ in range(3):
            for _ in range(4):
                post(base, PROGRAM, payload)
            tick("recovering")

        doc = fetch_alerts(base)
        print("\nalert transitions (also in the JSONL event log):")
        for entry in doc["transitions"]:
            print(f"  {entry['rule']}: -> {entry['to']}"
                  f" (burn {entry.get('value')})")
        states = [entry["to"] for entry in doc["transitions"]]
        assert states == ["pending", "firing", "resolved"], states
        print("\nfull story observed: pending -> firing -> resolved")
    finally:
        server.stop()


if __name__ == "__main__":
    main()
