"""Load driver for the `repro serve` daemon: closed loop, open loop,
and the fast-path ablation.

Spins up in-process :class:`repro.serve.MediatorServer` instances on
ephemeral ports and drives ``POST /convert/<program>`` four ways:

``--mode closed`` (default)
    N keep-alive clients (default 8) issue the next request as soon as
    the previous answer lands, while a scraper thread polls
    ``/metrics`` + ``/stats`` like Prometheus would. Gates: every
    request sent appears in ``serve.requests`` and the JSONL request
    log (zero dropped samples), all responses 200.

``--mode ablation``
    The same closed loop twice over a repeated payload — result cache
    off, then on — and reports the speedup. Gate: the warm cache must
    deliver at least ``--min-cache-speedup`` (default 2.0) the req/s of
    the cold path. Also replays distinct payloads through a coalescing
    server and a plain server and byte-compares the response cores
    (everything except trace id and latency): coalesced == solo is a
    hard identity gate.

``--mode open``
    Requests arrive on a fixed clock (``--arrival-rps``, auto-tuned to
    ~3x measured capacity when omitted) regardless of completions —
    the only honest way to measure overload. The server runs with a
    small ``--max-queue-depth``. Gates: admission control actually
    sheds (some 429s observed), every 429 carries ``Retry-After``, and
    the p99 of *accepted* requests stays bounded (the queue cannot
    grow without limit, so accepted latency cannot either).

``--mode full``
    All of the above, one combined report (what CI writes to
    BENCH_PR6.json).

``--mode alerts``
    The closed loop paired back-to-back — no alert rules, then a
    live rule set (thresholds, percentile reads, burn-rate windows)
    with the history sampler ticking fast enough to evaluate many
    times mid-run. Reports the evaluator's throughput overhead as the
    median of per-pair ratios; ``--alerts-max-overhead-pct`` gates it
    (CI uses 5). The rule set is deliberately quiet: anything firing
    during the run is itself a failure. Writes ``BENCH_PR8.json``
    under its own ``serve_alerts`` family so the trend observatory
    never pairs it with the plain closed-loop numbers.

``--mode quality``
    The warm-cache closed loop paired back-to-back — shadow
    verification off, then on (``--quality-sample``, default 8) — over
    a repeated payload so cache hits (the path shadow verification
    taxes) dominate. Reports the median per-pair throughput overhead;
    ``--quality-max-overhead-pct`` gates it (CI uses 5). Hard gates:
    the worker actually checked samples, and a self-consistent server
    produced zero mismatches. Writes ``BENCH_PR9.json`` under its own
    ``serve_quality`` family.

Run standalone (not under pytest)::

    python benchmarks/bench_serve.py                        # closed loop
    python benchmarks/bench_serve.py --quick                # CI smoke
    python benchmarks/bench_serve.py --mode full --json BENCH_PR6.json
    python benchmarks/bench_serve.py --mode alerts --json BENCH_PR8.json
    python benchmarks/bench_serve.py --mode quality --json BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time

try:
    from runner import percentile, write_report
except ImportError:  # pytest collects this file as benchmarks.bench_*
    from benchmarks.runner import percentile, write_report

from repro.serve import MediatorServer  # noqa: E402
from repro.workloads import brochure_sgml  # noqa: E402

PROGRAM = "SgmlBrochuresToOdmg"


def response_core(payload: dict) -> str:
    """A response payload minus the per-request stamps, canonicalized
    for byte comparison."""
    return json.dumps(
        {key: value for key, value in payload.items()
         if key not in ("trace_id", "latency_ms", "cache_hit")},
        sort_keys=True,
    )


def post_once(host, port, payload, include_output=False):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        query = "?include=output" if include_output else ""
        connection.request(
            "POST", f"/convert/{PROGRAM}{query}", body=payload,
            headers={"Content-Type": "application/sgml"},
        )
        response = connection.getresponse()
        body = response.read()
        return response.status, dict(response.headers), json.loads(body)
    finally:
        connection.close()


def client_worker(host, port, payload, requests, latencies, statuses, lock):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for _ in range(requests):
            start = time.perf_counter()
            connection.request(
                "POST", f"/convert/{PROGRAM}", body=payload,
                headers={"Content-Type": "application/sgml"},
            )
            response = connection.getresponse()
            response.read()
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            with lock:
                latencies.append(elapsed_ms)
                statuses[response.status] = statuses.get(response.status, 0) + 1
    finally:
        connection.close()


def scraper_worker(host, port, stop, scrape_counts, lock):
    """Poll /metrics and /stats like a monitoring stack would."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        while not stop.is_set():
            for path in ("/metrics", "/stats"):
                connection.request("GET", path)
                response = connection.getresponse()
                response.read()
                with lock:
                    scrape_counts[path] = scrape_counts.get(path, 0) + 1
            stop.wait(0.05)
    finally:
        connection.close()


def drive_closed_loop(server, payload, clients, requests, scrape=True):
    """Hammer one server with N closed-loop clients; returns the raw
    measurements (latencies sorted ascending)."""
    latencies, statuses, scrape_counts = [], {}, {}
    lock = threading.Lock()
    stop_scraper = threading.Event()
    scraper = threading.Thread(
        target=scraper_worker,
        args=(server.host, server.port, stop_scraper, scrape_counts, lock),
    ) if scrape else None
    workers = [
        threading.Thread(
            target=client_worker,
            args=(server.host, server.port, payload, requests,
                  latencies, statuses, lock),
        )
        for _ in range(clients)
    ]
    if scraper is not None:
        scraper.start()
    wall_start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall_s = time.perf_counter() - wall_start
    stop_scraper.set()
    if scraper is not None:
        scraper.join()
    latencies.sort()
    return wall_s, latencies, statuses, scrape_counts


def latency_report(latencies):
    return {
        "p50": round(percentile(latencies, 0.50), 3),
        "p95": round(percentile(latencies, 0.95), 3),
        "p99": round(percentile(latencies, 0.99), 3),
        "max": round(latencies[-1], 3) if latencies else 0.0,
    }


# ---------------------------------------------------------------------------
# Modes
# ---------------------------------------------------------------------------


def run_closed(args, payload):
    """The PR-4 closed-loop run with the zero-dropped-samples gate."""
    total = args.clients * args.requests
    server = MediatorServer(port=0, warm=False, cache_size=args.cache_size,
                            coalesce_window_ms=args.coalesce_window_ms)
    server.warm_now()
    with server:
        print(
            f"closed loop on :{server.port} — {args.clients} clients x "
            f"{args.requests} requests, {args.brochures} brochure(s)/payload "
            f"({len(payload)} bytes)"
        )
        wall_s, latencies, statuses, scrape_counts = drive_closed_loop(
            server, payload, args.clients, args.requests
        )
        served = server.registry.counter("serve.requests").total()
        logged = len(server.request_log)
        server_stats = server.registry.histogram(
            "serve.latency_ms"
        ).stats(program=PROGRAM)
        cache_stats = server.cache.stats() if server.cache else None

    throughput = total / wall_s if wall_s else float("inf")
    report = {
        "scenario": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "total_requests": total,
            "payload_bytes": len(payload),
            "program": PROGRAM,
            "cache_size": args.cache_size,
            "coalesce_window_ms": args.coalesce_window_ms,
        },
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(throughput, 1),
        "client_latency_ms": latency_report(latencies),
        "server_latency_ms": {
            "count": server_stats["count"],
            "p50": server_stats["p50"],
            "p95": server_stats["p95"],
            "p99": server_stats["p99"],
        },
        "statuses": statuses,
        "scrapes": scrape_counts,
        "metric_samples": {"serve_requests": served, "request_log": logged},
    }
    if cache_stats is not None:
        report["cache"] = cache_stats

    print(f"  wall       : {wall_s * 1000:9.1f} ms "
          f"({throughput:.1f} req/s, {args.clients} concurrent)")
    print(f"  client p50 : {report['client_latency_ms']['p50']:9.2f} ms")
    print(f"  client p95 : {report['client_latency_ms']['p95']:9.2f} ms")
    print(f"  scrapes    : {sum(scrape_counts.values())} during load")

    failures = []
    non_ok = {s: n for s, n in statuses.items() if s != 200}
    if non_ok:
        failures.append(f"non-200 responses under load: {non_ok}")
    if served != total or logged != total:
        failures.append(
            f"dropped samples — sent {total}, serve.requests={served}, "
            f"request log={logged}"
        )
    else:
        print(f"  samples    : {total} sent == {served:g} counted == "
              f"{logged} logged (zero dropped)")
    if args.max_p95_ms is not None and \
            report["client_latency_ms"]["p95"] > args.max_p95_ms:
        failures.append(
            f"client p95 {report['client_latency_ms']['p95']:.2f} ms "
            f"exceeds the {args.max_p95_ms:.2f} ms budget"
        )
    return report, failures


def run_ablation(args, payload):
    """Cache off vs on over a repeated payload, plus the coalescing
    byte-identity gate."""
    failures = []
    runs = {}
    # The cache saves the conversion, not the HTTP shell (~5 ms/req of
    # socket + JSON framing): measure over a payload whose conversion
    # cost dominates, or the ablation understates the fast path.
    ablation_brochures = max(args.brochures, 24)
    payload = brochure_sgml(ablation_brochures, distinct_suppliers=4).encode()
    for label, cache_size in (("cache_off", 0), ("cache_on", 256)):
        server = MediatorServer(port=0, warm=False, cache_size=cache_size)
        server.warm_now()
        with server:
            wall_s, latencies, statuses, _ = drive_closed_loop(
                server, payload, args.clients, args.requests, scrape=False
            )
            hit_rate = (
                server.cache.stats()["hit_rate"] if server.cache else None
            )
        total = args.clients * args.requests
        throughput = total / wall_s if wall_s else float("inf")
        runs[label] = {
            "wall_s": round(wall_s, 3),
            "throughput_rps": round(throughput, 1),
            "client_latency_ms": latency_report(latencies),
            "hit_rate": hit_rate,
        }
        non_ok = {s: n for s, n in statuses.items() if s != 200}
        if non_ok:
            failures.append(f"{label}: non-200 responses {non_ok}")
        print(f"  {label:9}: {throughput:9.1f} req/s  "
              f"p50 {runs[label]['client_latency_ms']['p50']:.2f} ms"
              + (f"  (hit rate {hit_rate})" if hit_rate is not None else ""))

    speedup = (
        runs["cache_on"]["throughput_rps"] /
        runs["cache_off"]["throughput_rps"]
        if runs["cache_off"]["throughput_rps"] else float("inf")
    )
    print(f"  speedup   : {speedup:9.2f}x (gate: >= "
          f"{args.min_cache_speedup:.1f}x)")
    if speedup < args.min_cache_speedup:
        failures.append(
            f"cache speedup {speedup:.2f}x below the "
            f"{args.min_cache_speedup:.1f}x gate"
        )

    # -- coalescing byte-identity gate ---------------------------------
    bodies = [
        brochure_sgml(args.brochures, distinct_suppliers=2 + index).encode()
        for index in range(4)
    ]
    plain = MediatorServer(port=0, warm=False, cache_size=0)
    plain.warm_now()
    with plain:
        baselines = [
            response_core(post_once(plain.host, plain.port, body,
                                    include_output=True)[2])
            for body in bodies
        ]
    coalesced = MediatorServer(port=0, warm=False, cache_size=0,
                               coalesce_window_ms=10.0)
    coalesced.warm_now()
    checked, mismatches = 0, 0
    with coalesced:
        results = {}
        lock = threading.Lock()

        def fire(index, body):
            outcome = post_once(coalesced.host, coalesced.port, body,
                                include_output=True)
            with lock:
                results.setdefault(index, []).append(outcome)

        threads = [
            threading.Thread(target=fire, args=(index % len(bodies),
                                                bodies[index % len(bodies)]))
            for index in range(len(bodies) * 3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batches = coalesced.registry.counter("serve.coalesce.batches").total()
    for index, outcomes in results.items():
        for status, _, body in outcomes:
            checked += 1
            if status != 200 or response_core(body) != baselines[index]:
                mismatches += 1
    print(f"  identity  : {checked} coalesced responses vs solo baselines, "
          f"{mismatches} mismatch(es), {batches:g} batch(es)")
    if mismatches:
        failures.append(
            f"coalesced responses diverged from solo execution "
            f"({mismatches}/{checked})"
        )

    return {
        "runs": runs,
        "cache_speedup": round(speedup, 2),
        "identity": {
            "checked": checked,
            "mismatches": mismatches,
            "coalesce_batches": batches,
        },
    }, failures


def run_open(args, payload):
    """Fixed-arrival-rate overload against a bounded queue."""
    failures = []
    # Queue depth only builds when a conversion outlives a GIL slice
    # (sys.getswitchinterval() is 5 ms): short conversions serialize on
    # the GIL and never stack. Overload with a payload whose conversion
    # is decisively longer than one slice, like real mediation traffic.
    payload = brochure_sgml(
        max(args.brochures, 24), distinct_suppliers=4
    ).encode()
    server = MediatorServer(port=0, warm=False, cache_size=0,
                            max_queue_depth=args.max_queue_depth)
    server.warm_now()
    with server:
        # Measure capacity to auto-tune an overloading arrival rate.
        if args.arrival_rps is None:
            probe_start = time.perf_counter()
            probes = 5
            for _ in range(probes):
                post_once(server.host, server.port, payload)
            service_s = (time.perf_counter() - probe_start) / probes
            arrival_rps = min(max(20.0, 2.0 / service_s), 500.0)
        else:
            arrival_rps = args.arrival_rps
        interval = 1.0 / arrival_rps
        total = max(int(args.open_duration_s * arrival_rps), 20)
        print(f"open loop on :{server.port} — {arrival_rps:.0f} req/s "
              f"arrival for {total} requests, "
              f"max_queue_depth={args.max_queue_depth}")

        # Arrivals follow a fixed clock; a pool of keep-alive workers
        # (not one thread per request, which would overflow the TCP
        # accept backlog and measure the kernel, not the server) claims
        # scheduled slots. Latency counts from the *scheduled* arrival,
        # so worker backlog shows up as latency instead of silently
        # slowing the arrival process (no coordinated omission).
        outcomes = []
        lock = threading.Lock()
        slots = iter(range(total))
        base = time.perf_counter() + 0.05

        def open_worker():
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                while True:
                    with lock:
                        slot = next(slots, None)
                    if slot is None:
                        return
                    scheduled = base + slot * interval
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        connection.request(
                            "POST", f"/convert/{PROGRAM}", body=payload,
                            headers={"Content-Type": "application/sgml"},
                        )
                        response = connection.getresponse()
                        response.read()
                        status = response.status
                        headers = dict(response.headers)
                    except OSError:
                        status, headers = -1, {}
                        connection.close()
                        connection = http.client.HTTPConnection(
                            server.host, server.port, timeout=30
                        )
                    elapsed_ms = (time.perf_counter() - scheduled) * 1000.0
                    with lock:
                        outcomes.append((status, elapsed_ms, headers))
            finally:
                connection.close()

        workers = [
            threading.Thread(target=open_worker)
            for _ in range(min(32, total))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        rejected_total = server.registry.counter(
            "serve.rejected", "requests shed by admission control"
        ).total()

    accepted = sorted(ms for status, ms, _ in outcomes if status == 200)
    shed = [(ms, headers) for status, ms, headers in outcomes
            if status == 429]
    transport_errors = sum(1 for status, _, _ in outcomes if status == -1)
    other = {status for status, _, _ in outcomes} - {200, 429, -1}
    report = {
        "arrival_rps": round(arrival_rps, 1),
        "total_requests": total,
        "max_queue_depth": args.max_queue_depth,
        "accepted": len(accepted),
        "rejected": len(shed),
        "rejected_metric": rejected_total,
        "transport_errors": transport_errors,
        "accepted_latency_ms": latency_report(accepted),
        "rejection_latency_ms": latency_report(sorted(ms for ms, _ in shed)),
    }
    print(f"  accepted  : {len(accepted)} "
          f"(p99 {report['accepted_latency_ms']['p99']:.2f} ms)")
    print(f"  rejected  : {len(shed)} with 429 "
          f"(p99 {report['rejection_latency_ms']['p99']:.2f} ms)")

    if other:
        failures.append(f"unexpected statuses under overload: {sorted(other)}")
    if transport_errors > total * 0.05:
        failures.append(
            f"{transport_errors} transport errors — overload leaked below "
            f"the admission gate"
        )
    if not shed:
        failures.append(
            "open-loop overload produced zero 429s — admission control "
            "never engaged"
        )
    else:
        missing = [headers for _, headers in shed
                   if "Retry-After" not in headers]
        if missing:
            failures.append(
                f"{len(missing)} 429(s) without a Retry-After header"
            )
    if rejected_total != len(shed):
        failures.append(
            f"serve.rejected={rejected_total:g} but clients saw "
            f"{len(shed)} 429s"
        )
    # Bounded-queue argument: an accepted request waits behind at most
    # max_queue_depth conversions, so its latency is bounded by roughly
    # (depth + 1) x service time. Give slack for scheduling noise.
    if accepted:
        budget_ms = args.open_p99_budget_ms
        if report["accepted_latency_ms"]["p99"] > budget_ms:
            failures.append(
                f"accepted p99 {report['accepted_latency_ms']['p99']:.1f} ms "
                f"exceeds the bounded-queue budget {budget_ms:.0f} ms"
            )
    return report, failures


#: The quiet-by-construction rule set the alerts mode evaluates: every
#: rule kind and stat path the evaluator supports, with bounds no
#: healthy benchmark run can cross — the cost is real, the alerts are
#: not.
ALERT_BENCH_RULES = [
    {"name": "p99-latency", "metric": "serve.latency_ms", "stat": "p99",
     "op": ">", "value": 1e9, "for": "1s"},
    {"name": "p50-latency", "metric": "serve.latency_ms", "stat": "p50",
     "op": ">", "value": 1e9},
    {"name": "error-rate", "metric": "serve.errors", "stat": "rate",
     "op": ">", "value": 1e9, "for": "5s"},
    {"name": "rejections", "metric": "serve.rejected", "op": ">",
     "value": 1e9},
    {"name": "slo-fast", "objective": 0.999, "window": "5m",
     "max_burn_rate": 1e9},
    {"name": "slo-slow", "objective": 0.99, "window": "1h",
     "max_burn_rate": 1e9},
]


def run_alerts(args, payload):
    """Closed loop with and without a live alert-rule set, paired
    back-to-back; the overhead gate for the always-on evaluator."""
    from repro.obs.alerts import rules_from_data

    failures = []
    pairs = []
    runs = {}
    # A sub-second leg measures scheduler noise, not the evaluator:
    # keep each leg long enough for several sampler ticks.
    requests = max(args.requests, 25)
    total = args.clients * requests
    evaluations = transitions = 0
    fired = []
    # One discarded leg warms the process (allocator, import side
    # effects) so the first measured pair is not biased against
    # whichever label runs first.
    warmup = MediatorServer(port=0, warm=False, cache_size=0)
    warmup.warm_now()
    with warmup:
        drive_closed_loop(warmup, payload, args.clients,
                          max(5, requests // 5), scrape=False)
    for attempt in range(args.alerts_pairs):
        for label, rules in (("alerts_off", None),
                             ("alerts_on",
                              rules_from_data(ALERT_BENCH_RULES))):
            server = MediatorServer(
                port=0, warm=False, cache_size=0,
                history_interval_s=args.alerts_tick_s,
                alert_rules=rules,
            )
            server.warm_now()
            with server:
                wall_s, latencies, statuses, _ = drive_closed_loop(
                    server, payload, args.clients, requests,
                    scrape=False,
                )
                if rules is not None:
                    summary = server.alerts.summary()
                    evaluations += summary["evaluations"]
                    transitions += len(server.alerts.snapshot()["transitions"])
                    fired.extend(summary["firing"] + summary["pending"])
            throughput = total / wall_s if wall_s else float("inf")
            runs.setdefault(label, []).append(round(throughput, 1))
            non_ok = {s: n for s, n in statuses.items() if s != 200}
            if non_ok:
                failures.append(f"{label}: non-200 responses {non_ok}")
            if attempt == 0:
                print(f"  {label:10}: {throughput:9.1f} req/s  "
                      f"p50 {percentile(latencies, 0.5):.2f} ms")
        off, on = runs["alerts_off"][-1], runs["alerts_on"][-1]
        pairs.append((off / on - 1.0) * 100.0 if on else float("inf"))

    pairs.sort()
    middle = len(pairs) // 2
    overhead_pct = (
        pairs[middle] if len(pairs) % 2
        else (pairs[middle - 1] + pairs[middle]) / 2.0
    )
    print(f"  overhead  : {overhead_pct:+9.2f}% (median of "
          f"{len(pairs)} back-to-back pair(s); "
          f"{evaluations} evaluation(s) during load)")
    if evaluations == 0:
        failures.append(
            "the evaluator never ran during the alerts-on legs — "
            "lengthen the run or shrink --alerts-tick-s"
        )
    if fired or transitions:
        failures.append(
            f"the quiet rule set produced activity under load: "
            f"fired/pending={sorted(set(fired))}, "
            f"transitions={transitions}"
        )
    if args.alerts_max_overhead_pct is not None and \
            overhead_pct > args.alerts_max_overhead_pct:
        failures.append(
            f"alert-evaluator overhead {overhead_pct:+.2f}% exceeds the "
            f"{args.alerts_max_overhead_pct:.1f}% budget"
        )
    return {
        "rules": len(ALERT_BENCH_RULES),
        "tick_s": args.alerts_tick_s,
        "runs": {label: {"throughput_rps": values}
                 for label, values in runs.items()},
        "pair_overheads_pct": [round(value, 2) for value in pairs],
        "overhead_pct": round(overhead_pct, 2),
        "evaluations": evaluations,
        "transitions": transitions,
    }, failures


def run_quality(args, payload):
    """Warm-cache closed loop with and without shadow verification,
    paired back-to-back; the overhead gate for the quality observatory
    (source-drift fingerprints ride the conversion path in both legs —
    the pair isolates what PR 9 adds to the steady-state hit path)."""
    failures = []
    pairs = []
    runs = {}
    requests = max(args.requests, 25)
    total = args.clients * requests
    checked = mismatches = dropped = 0
    warmup = MediatorServer(port=0, warm=False, cache_size=256)
    warmup.warm_now()
    with warmup:
        drive_closed_loop(warmup, payload, args.clients,
                          max(5, requests // 5), scrape=False)
    for attempt in range(args.quality_pairs):
        for label, sample in (("shadow_off", None),
                              ("shadow_on", args.quality_sample)):
            server = MediatorServer(port=0, warm=False, cache_size=256,
                                    shadow_sample=sample)
            server.warm_now()
            with server:
                wall_s, latencies, statuses, _ = drive_closed_loop(
                    server, payload, args.clients, requests, scrape=False,
                )
                if sample is not None:
                    # Let the worker drain what the run enqueued so the
                    # mismatch gate judges every sampled hit.
                    deadline = time.perf_counter() + 10.0
                    while (server._shadow_queue.qsize()
                           and time.perf_counter() < deadline):
                        time.sleep(0.05)
                    shadow = server.quality_payload()["shadow"]
                    checked += shadow["checked"]
                    mismatches += shadow["mismatches"]
                    dropped += shadow["dropped"]
            throughput = total / wall_s if wall_s else float("inf")
            runs.setdefault(label, []).append(round(throughput, 1))
            non_ok = {s: n for s, n in statuses.items() if s != 200}
            if non_ok:
                failures.append(f"{label}: non-200 responses {non_ok}")
            if attempt == 0:
                print(f"  {label:10}: {throughput:9.1f} req/s  "
                      f"p50 {percentile(latencies, 0.5):.2f} ms")
        off, on = runs["shadow_off"][-1], runs["shadow_on"][-1]
        pairs.append((off / on - 1.0) * 100.0 if on else float("inf"))

    pairs.sort()
    middle = len(pairs) // 2
    overhead_pct = (
        pairs[middle] if len(pairs) % 2
        else (pairs[middle - 1] + pairs[middle]) / 2.0
    )
    print(f"  overhead  : {overhead_pct:+9.2f}% (median of "
          f"{len(pairs)} back-to-back pair(s); "
          f"{checked:g} shadow check(s), {mismatches:g} mismatch(es))")
    if checked == 0:
        failures.append(
            "shadow verification never checked a sample during the "
            "shadow-on legs — lengthen the run or shrink --quality-sample"
        )
    if mismatches:
        failures.append(
            f"shadow verification disagreed with the cache on a "
            f"self-consistent server ({mismatches:g} mismatch(es))"
        )
    if args.quality_max_overhead_pct is not None and \
            overhead_pct > args.quality_max_overhead_pct:
        failures.append(
            f"shadow-verification overhead {overhead_pct:+.2f}% exceeds "
            f"the {args.quality_max_overhead_pct:.1f}% budget"
        )
    return {
        "sample": args.quality_sample,
        "runs": {label: {"throughput_rps": values}
                 for label, values in runs.items()},
        "pair_overheads_pct": [round(value, 2) for value in pairs],
        "overhead_pct": round(overhead_pct, 2),
        "shadow": {"checked": checked, "mismatches": mismatches,
                   "dropped": dropped},
    }, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("closed", "ablation", "open",
                                           "full", "alerts", "quality"),
                        default="closed")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per client (default 50)")
    parser.add_argument("--brochures", type=int, default=6,
                        help="brochures per request payload (default 6)")
    parser.add_argument("--cache-size", type=int, default=0,
                        help="result-cache entries for --mode closed "
                             "(default 0: measure the conversion path)")
    parser.add_argument("--coalesce-window-ms", type=float, default=0.0,
                        help="coalescing window for --mode closed")
    parser.add_argument("--min-cache-speedup", type=float, default=2.0,
                        metavar="X",
                        help="ablation gate: warm cache must reach X times "
                             "the cold req/s (default 2.0)")
    parser.add_argument("--arrival-rps", type=float, default=None,
                        help="open-loop arrival rate (default: 3x measured "
                             "capacity)")
    parser.add_argument("--open-duration-s", type=float, default=2.0,
                        help="open-loop run length (default 2s)")
    parser.add_argument("--open-p99-budget-ms", type=float, default=2000.0,
                        help="open-loop accepted-p99 bound (default 2000)")
    parser.add_argument("--max-queue-depth", type=int, default=4,
                        help="open-loop admission watermark (default 4)")
    parser.add_argument("--alerts-pairs", type=int, default=3,
                        help="back-to-back off/on pairs for --mode alerts "
                             "(default 3; the overhead is their median)")
    parser.add_argument("--alerts-tick-s", type=float, default=0.2,
                        metavar="S",
                        help="history-sampler interval during --mode alerts "
                             "(default 0.2 — many evaluations per leg)")
    parser.add_argument("--alerts-max-overhead-pct", type=float,
                        default=None, metavar="PCT",
                        help="fail when the alert evaluator costs more than "
                             "PCT%% closed-loop throughput (CI uses 5)")
    parser.add_argument("--quality-pairs", type=int, default=3,
                        help="back-to-back off/on pairs for --mode quality "
                             "(default 3; the overhead is their median)")
    parser.add_argument("--quality-sample", type=int, default=8,
                        metavar="N",
                        help="shadow-verify 1-in-N cache hits during "
                             "--mode quality (default 8)")
    parser.add_argument("--quality-max-overhead-pct", type=float,
                        default=None, metavar="PCT",
                        help="fail when shadow verification costs more than "
                             "PCT%% warm-cache throughput (CI uses 5)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes")
    parser.add_argument("--json", metavar="FILE", dest="json_path",
                        help="write the report to FILE as JSON")
    parser.add_argument("--max-p95-ms", type=float, default=None,
                        metavar="MS",
                        help="fail when closed-loop client p95 exceeds MS")
    args = parser.parse_args(argv)
    if args.quick:
        args.requests, args.brochures = 10, 3
        args.open_duration_s = min(args.open_duration_s, 1.0)
    if args.clients < 1 or args.requests < 1:
        parser.error("--clients/--requests must be >= 1")

    payload = brochure_sgml(args.brochures, distinct_suppliers=4).encode()
    # The alerts mode gets its own trend family: compare.py pairs
    # artifacts by family, and an overhead A/B must never be gated
    # against the plain closed-loop throughput numbers.
    family = {"alerts": "serve_alerts", "quality": "serve_quality"}.get(
        args.mode, "serve"
    )
    report = {"benchmark": family, "mode": args.mode}
    failures = []

    if args.mode in ("closed", "full"):
        closed_report, closed_failures = run_closed(args, payload)
        report.update(closed_report)  # PR4-compatible top-level shape
        failures.extend(closed_failures)
    if args.mode in ("ablation", "full"):
        print("cache ablation (closed loop, repeated payload):")
        report["ablation"], ablation_failures = run_ablation(args, payload)
        failures.extend(ablation_failures)
    if args.mode in ("open", "full"):
        report["open_loop"], open_failures = run_open(args, payload)
        failures.extend(open_failures)
    if args.mode == "alerts":
        print("alert-evaluator overhead (closed loop, off vs on):")
        report["alerts"], alert_failures = run_alerts(args, payload)
        failures.extend(alert_failures)
    if args.mode == "quality":
        print("shadow-verification overhead (warm cache, off vs on):")
        report["quality"], quality_failures = run_quality(args, payload)
        failures.extend(quality_failures)

    for failure in failures:
        print(f"FAIL: {failure}")
    write_report(report, args.json_path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
