"""Threaded load driver for the `repro serve` daemon.

Spins up an in-process :class:`repro.serve.MediatorServer` on an
ephemeral port, hammers ``POST /convert/<program>`` from N concurrent
keep-alive clients (default 8) while a scraper thread polls
``/metrics`` and ``/stats`` the way Prometheus would, then
cross-checks the server's own accounting against the client-side
truth: every request sent must appear in ``serve.requests`` and the
JSONL request log — zero dropped samples under concurrency.

Run standalone (not under pytest)::

    python benchmarks/bench_serve.py                   # 8 clients x 50 reqs
    python benchmarks/bench_serve.py --quick           # CI smoke
    python benchmarks/bench_serve.py --json BENCH_PR4.json

Reports client-side throughput and latency percentiles alongside the
server's streaming p50/p95/p99 estimates (the two should roughly
agree — the streaming estimates interpolate within histogram buckets).
"""

from __future__ import annotations

import argparse
import http.client
import sys
import threading
import time

try:
    from runner import percentile, write_report
except ImportError:  # pytest collects this file as benchmarks.bench_*
    from benchmarks.runner import percentile, write_report

from repro.serve import MediatorServer  # noqa: E402
from repro.workloads import brochure_sgml  # noqa: E402

PROGRAM = "SgmlBrochuresToOdmg"


def client_worker(host, port, payload, requests, latencies, statuses, lock):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for _ in range(requests):
            start = time.perf_counter()
            connection.request(
                "POST", f"/convert/{PROGRAM}", body=payload,
                headers={"Content-Type": "application/sgml"},
            )
            response = connection.getresponse()
            response.read()
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            with lock:
                latencies.append(elapsed_ms)
                statuses[response.status] = statuses.get(response.status, 0) + 1
    finally:
        connection.close()


def scraper_worker(host, port, stop, scrape_counts, lock):
    """Poll /metrics and /stats like a monitoring stack would."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        while not stop.is_set():
            for path in ("/metrics", "/stats"):
                connection.request("GET", path)
                response = connection.getresponse()
                response.read()
                with lock:
                    scrape_counts[path] = scrape_counts.get(path, 0) + 1
            stop.wait(0.05)
    finally:
        connection.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per client (default 50)")
    parser.add_argument("--brochures", type=int, default=6,
                        help="brochures per request payload (default 6)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (8 clients x 10 requests)")
    parser.add_argument("--json", metavar="FILE", dest="json_path",
                        help="write the report to FILE as JSON")
    parser.add_argument("--max-p95-ms", type=float, default=None,
                        metavar="MS",
                        help="fail when client-side p95 exceeds MS")
    args = parser.parse_args(argv)
    if args.quick:
        args.requests, args.brochures = 10, 3
    if args.clients < 1 or args.requests < 1:
        parser.error("--clients/--requests must be >= 1")

    payload = brochure_sgml(args.brochures, distinct_suppliers=4).encode()
    server = MediatorServer(port=0, warm=False)
    server.warm_now()
    total = args.clients * args.requests
    latencies, statuses, scrape_counts = [], {}, {}
    lock = threading.Lock()
    stop_scraper = threading.Event()
    exit_code = 0

    with server:
        print(
            f"repro serve on :{server.port} — {args.clients} clients x "
            f"{args.requests} requests, {args.brochures} brochure(s)/payload "
            f"({len(payload)} bytes)"
        )
        scraper = threading.Thread(
            target=scraper_worker,
            args=(server.host, server.port, stop_scraper, scrape_counts, lock),
        )
        workers = [
            threading.Thread(
                target=client_worker,
                args=(server.host, server.port, payload, args.requests,
                      latencies, statuses, lock),
            )
            for _ in range(args.clients)
        ]
        scraper.start()
        wall_start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall_s = time.perf_counter() - wall_start
        stop_scraper.set()
        scraper.join()

        served = server.registry.counter("serve.requests").total()
        logged = len(server.request_log)
        latency = server.registry.histogram("serve.latency_ms")
        server_stats = latency.stats(program=PROGRAM)

    latencies.sort()
    throughput = total / wall_s if wall_s else float("inf")
    report = {
        "benchmark": "serve",
        "scenario": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "total_requests": total,
            "payload_bytes": len(payload),
            "program": PROGRAM,
        },
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(throughput, 1),
        "client_latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p95": round(percentile(latencies, 0.95), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "server_latency_ms": {
            "count": server_stats["count"],
            "p50": server_stats["p50"],
            "p95": server_stats["p95"],
            "p99": server_stats["p99"],
        },
        "statuses": statuses,
        "scrapes": scrape_counts,
        "metric_samples": {"serve_requests": served, "request_log": logged},
    }

    print(f"  wall       : {wall_s * 1000:9.1f} ms "
          f"({throughput:.1f} req/s, {args.clients} concurrent)")
    print(f"  client p50 : {report['client_latency_ms']['p50']:9.2f} ms")
    print(f"  client p95 : {report['client_latency_ms']['p95']:9.2f} ms")
    print(f"  server p95 : {server_stats['p95'] or 0:9.2f} ms (streaming estimate)")
    print(f"  scrapes    : {sum(scrape_counts.values())} during load")

    non_ok = {s: n for s, n in statuses.items() if s != 200}
    if non_ok:
        print(f"FAIL: non-200 responses under load: {non_ok}")
        exit_code = 1
    if served != total or logged != total:
        print(
            f"FAIL: dropped samples — sent {total}, serve.requests={served}, "
            f"request log={logged}"
        )
        exit_code = 1
    else:
        print(f"  samples    : {total} sent == {served:g} counted == "
              f"{logged} logged (zero dropped)")
    if args.max_p95_ms is not None and \
            report["client_latency_ms"]["p95"] > args.max_p95_ms:
        print(
            f"FAIL: client p95 {report['client_latency_ms']['p95']:.2f} ms "
            f"exceeds the {args.max_p95_ms:.2f} ms budget"
        )
        exit_code = 1

    write_report(report, args.json_path)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
