"""Wall-clock benchmark for rule-dispatch indexing (ablation).

The car-dealer mediation scenario, scaled: the mediator's document base
holds the Section 3.1 SGML brochures *plus* thousands of other document
kinds flowing through the dealership (price lists, invoices, service
records...), each converted by its own rule. Without dispatch indexing
every rule attempts a body match against every input tree —
O(rules x inputs) — and almost all of those attempts are rejections.
The index prunes them to the trees whose root signature the rule could
actually match.

Run standalone (not under pytest)::

    python benchmarks/bench_dispatch_index.py              # full: >=10k trees
    python benchmarks/bench_dispatch_index.py --quick      # CI smoke
    python benchmarks/bench_dispatch_index.py --no-index   # ablation leg only
    python benchmarks/bench_dispatch_index.py --json out.json  # machine-readable

The default mode times both configurations, reports the speedup, and
asserts the output stores are identical (indexing must never change
results, only how fast non-matches are discarded). ``--json`` also
writes per-leg wall times plus the run's key observability metrics
(dispatch ratios, Skolem stats, demand iterations) so CI can archive
them as an artifact.

``--provenance`` adds a third leg: the indexed configuration re-run
with the per-firing provenance recorder installed (at ``--sample-rate``),
reporting its overhead against the recorder-off indexed leg and
asserting the output store stays byte-identical. With
``--max-overhead-pct`` the benchmark exits non-zero when the recorder
costs more than the budget — the CI guardrail for the <5% target.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.trees import DataStore, tree  # noqa: E402
from repro.library.programs import BROCHURES_TEXT  # noqa: E402
from repro.obs import ProvenanceStore, tracing  # noqa: E402
from repro.workloads import brochure_trees  # noqa: E402
from repro.yatl.parser import parse_program  # noqa: E402

_KEY_METRICS = [
    "yatl.inputs.total",
    "yatl.inputs.converted",
    "yatl.outputs.trees",
    "yatl.rule.applications",
    "yatl.rule.bindings_matched",
    "yatl.dispatch.indexed_calls",
    "yatl.dispatch.unindexed_calls",
    "yatl.dispatch.subjects_considered",
    "yatl.dispatch.subjects_admitted",
    "yatl.dispatch.hit_ratio",
    "yatl.dispatch.candidate_reduction_ratio",
    "yatl.skolem.ids_fresh",
    "yatl.skolem.ids_reused",
    "yatl.demand.iterations",
    "yatl.match.root_memo_hits",
]

_KIND_BASES = [
    "pricelist",
    "invoice",
    "service_record",
    "warranty",
    "testdrive",
    "order",
    "delivery",
    "tradein",
    "inspection",
    "leasing",
]


def kind_names(count: int):
    """``count`` distinct document-kind names, car-dealer flavoured."""
    return [
        f"{_KIND_BASES[i % len(_KIND_BASES)]}_{i // len(_KIND_BASES)}"
        for i in range(count)
    ]


def dealer_program(kinds):
    """Rules 1+2 (brochures -> car/supplier objects) combined with one
    conversion rule per extra document kind the dealership produces."""
    lines = [BROCHURES_TEXT.strip().rsplit("end", 1)[0]]
    for kind in kinds:
        lines.append(
            f"""
rule Conv_{kind}:
  P{kind}(Id) :
    class -> {kind} < -> id -> Id, -> amount -> A >
<=
  Pdoc_{kind} :
    {kind} < -> id -> Id, -> dealer -> Dl, -> amount -> A >
"""
        )
    lines.append("end")
    return parse_program("\n".join(lines))


def dealer_store(brochures: int, documents: int, kinds) -> DataStore:
    """A heterogeneous input store: brochures interleaved with the
    other document kinds, in a deterministic round-robin order."""
    store = DataStore()
    for index, node in enumerate(brochure_trees(brochures, distinct_suppliers=10)):
        store.add(f"br{index}", node)
    for index in range(documents):
        kind = kinds[index % len(kinds)]
        node = tree(
            kind,
            tree("id", index),
            tree("dealer", f"VW dealer {index % 7}"),
            tree("amount", 100 + index % 900),
        )
        store.add(f"doc{index}", node)
    return store


def run_once(program, store, use_index: bool, provenance=None):
    start = time.perf_counter()
    result = program.run(
        store, use_dispatch_index=use_index, provenance=provenance
    )
    elapsed = time.perf_counter() - start
    if result.unconverted:
        raise AssertionError(
            f"benchmark store must be fully convertible; "
            f"{len(result.unconverted)} tree(s) left over"
        )
    return elapsed, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trees", type=int, default=10_000,
        help="extra document trees beyond the brochures (default 10000)",
    )
    parser.add_argument(
        "--brochures", type=int, default=200,
        help="brochure trees converted by Rules 1+2 (default 200)",
    )
    parser.add_argument(
        "--kinds", type=int, default=50,
        help="distinct extra document kinds, one rule each (default 50)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="timed repetitions per configuration; best is reported",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke sizes for CI (overrides --trees/--brochures/--kinds)",
    )
    parser.add_argument(
        "--no-index", action="store_true",
        help="ablation: run only the unindexed configuration",
    )
    parser.add_argument(
        "--json", metavar="FILE", dest="json_path",
        help="write timings and key run metrics to FILE as JSON",
    )
    parser.add_argument(
        "--provenance", action="store_true",
        help="add an indexed leg with the per-firing provenance "
             "recorder installed and report its overhead",
    )
    parser.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="recorder sample rate for the provenance leg (default 1.0)",
    )
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None, metavar="PCT",
        help="fail (exit 1) when the provenance leg is more than PCT "
             "percent slower than the recorder-off indexed leg",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.trees, args.brochures, args.kinds = 600, 30, 8
    if min(args.trees, args.brochures, args.kinds) < 0:
        parser.error("--trees/--brochures/--kinds must be >= 0")
    if args.trees and not args.kinds:
        parser.error("--kinds must be >= 1 when --trees > 0")

    kinds = kind_names(args.kinds)
    program = dealer_program(kinds)
    store = dealer_store(args.brochures, args.trees, kinds)
    total = len(store)
    print(
        f"car-dealer store: {total} input trees "
        f"({args.brochures} brochures + {args.trees} documents over "
        f"{args.kinds} kinds), {len(program.rules)} rules"
    )

    def best_of(use_index: bool):
        timings = []
        result = None
        for _ in range(max(1, args.repeat)):
            elapsed, result = run_once(program, store, use_index)
            timings.append(elapsed)
        return min(timings), result

    def leg_report(elapsed: float, result) -> dict:
        metrics = result.metrics
        report = {"wall_ms": round(elapsed * 1000, 3)}
        for name in _KEY_METRICS:
            metric = metrics.get(name)
            if metric is not None:
                report[name] = metric.total()
        return report

    report = {
        "benchmark": "dispatch_index",
        "scenario": {
            "input_trees": total,
            "brochures": args.brochures,
            "documents": args.trees,
            "kinds": args.kinds,
            "rules": len(program.rules),
            "repeat": args.repeat,
        },
        "legs": {},
    }

    unindexed_time, unindexed_result = best_of(use_index=False)
    print(f"  no-index : {unindexed_time * 1000:9.1f} ms")
    report["legs"]["no_index"] = leg_report(unindexed_time, unindexed_result)
    exit_code = 0
    if not args.no_index:
        indexed_time, indexed_result = best_of(use_index=True)
        print(f"  indexed  : {indexed_time * 1000:9.1f} ms")
        report["legs"]["indexed"] = leg_report(indexed_time, indexed_result)

        same = list(indexed_result.store.items()) == list(
            unindexed_result.store.items()
        )
        report["identical_outputs"] = same
        if not same:
            print("FAIL: indexed and unindexed runs produced different stores")
            exit_code = 1
        else:
            speedup = (
                unindexed_time / indexed_time if indexed_time else float("inf")
            )
            report["speedup"] = round(speedup, 3)
            print(f"  speedup  : {speedup:9.2f}x  (identical output stores)")

        if args.provenance:
            # Overhead is measured pair-wise: each repetition runs the
            # recorder-off and recorder-on legs back to back (order
            # alternating), and the reported overhead is the *median*
            # of the per-pair ratios. Back-to-back runs see the same
            # machine conditions, and the median survives the scheduler
            # outliers that would dominate a min-of-legs comparison of
            # a few-percent delta.
            base_times, prov_times = [], []
            prov_result = prov = None

            def timed_base():
                elapsed, _unused = run_once(program, store, use_index=True)
                base_times.append(elapsed)
                return elapsed

            def timed_prov():
                nonlocal prov, prov_result
                prov = ProvenanceStore(sample_rate=args.sample_rate)
                with tracing(prov):
                    elapsed, prov_result = run_once(
                        program, store, use_index=True
                    )
                prov_times.append(elapsed)
                return elapsed

            pair_overheads = []
            for repetition in range(max(1, args.repeat)):
                if repetition % 2 == 0:
                    base_elapsed = timed_base()
                    prov_elapsed = timed_prov()
                else:
                    prov_elapsed = timed_prov()
                    base_elapsed = timed_base()
                if base_elapsed:
                    pair_overheads.append(
                        (prov_elapsed - base_elapsed) / base_elapsed * 100
                    )
            base_time, prov_time = min(base_times), min(prov_times)
            pair_overheads.sort()
            overhead_pct = (
                pair_overheads[len(pair_overheads) // 2]
                if pair_overheads
                else 0.0
            )
            print(
                f"  +recorder: {prov_time * 1000:9.1f} ms  "
                f"({overhead_pct:+.2f}% vs {base_time * 1000:.1f} ms "
                f"recorder-off, "
                f"{prov.recorded}/{prov.firings} firing(s) recorded)"
            )
            leg = leg_report(prov_time, prov_result)
            leg["sample_rate"] = args.sample_rate
            leg["provenance_firings"] = prov.firings
            leg["provenance_records"] = prov.recorded
            leg["baseline_wall_ms"] = round(base_time * 1000, 3)
            leg["overhead_pct"] = round(overhead_pct, 3)
            report["legs"]["indexed_provenance"] = leg

            prov_same = list(prov_result.store.items()) == list(
                indexed_result.store.items()
            )
            report["provenance_identical_outputs"] = prov_same
            if not prov_same:
                print(
                    "FAIL: provenance recording changed the output store"
                )
                exit_code = 1
            if (
                args.max_overhead_pct is not None
                and overhead_pct > args.max_overhead_pct
            ):
                print(
                    f"FAIL: recorder overhead {overhead_pct:.2f}% exceeds "
                    f"the {args.max_overhead_pct:.2f}% budget"
                )
                exit_code = 1

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  json     : {args.json_path}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
