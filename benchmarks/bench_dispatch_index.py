"""Wall-clock benchmark for rule-dispatch indexing (ablation).

The car-dealer mediation scenario, scaled: the mediator's document base
holds the Section 3.1 SGML brochures *plus* thousands of other document
kinds flowing through the dealership (price lists, invoices, service
records...), each converted by its own rule. Without dispatch indexing
every rule attempts a body match against every input tree —
O(rules x inputs) — and almost all of those attempts are rejections.
The index prunes them to the trees whose root signature the rule could
actually match.

Run standalone (not under pytest)::

    python benchmarks/bench_dispatch_index.py              # full: >=10k trees
    python benchmarks/bench_dispatch_index.py --quick      # CI smoke
    python benchmarks/bench_dispatch_index.py --no-index   # ablation leg only
    python benchmarks/bench_dispatch_index.py --json out.json  # machine-readable

The default mode times both configurations, reports the speedup, and
asserts the output stores are identical (indexing must never change
results, only how fast non-matches are discarded). ``--json`` also
writes per-leg wall times plus the run's key observability metrics
(dispatch ratios, Skolem stats, demand iterations) so CI can archive
them as an artifact.

``--provenance`` adds a third leg: the indexed configuration re-run
with the per-firing provenance recorder installed (at ``--sample-rate``),
reporting its overhead against the recorder-off indexed leg and
asserting the output store stays byte-identical. With
``--max-overhead-pct`` the benchmark exits non-zero when the recorder
costs more than the budget — the CI guardrail for the <5% target.

``--sampler`` adds the analogous leg for the wall-clock sampling
profiler (``repro.obs.profile``, at ``--sampler-hz``): the indexed
configuration re-run under ``profiling()``, with
``--sampler-max-overhead-pct`` as the CI guardrail that default-rate
sampling stays effectively free.

The **arena leg** runs by default whenever the indexed leg does: the
same store encoded once into a columnar :class:`ArenaStore` and
executed on the batch path of ``repro.yatl.arena_exec`` (flat column
comparisons for the compilable conversion rules, lazy materialization
for the rest). The one-time encode is reported but excluded from the
timed leg — in production the arena comes straight from a wrapper's
zero-copy import, not from re-encoding trees. Outputs must be
byte-identical to the indexed tree leg (hard gate);
``--min-arena-speedup`` additionally fails the run when the arena leg
is not at least that many times faster, and ``--arena-json`` writes
the pairwise comparison as its own ``dispatch_arena`` artifact for
``benchmarks/compare.py``. ``--no-arena`` is the ablation switch.
"""

from __future__ import annotations

import argparse
import sys
import time

try:
    from runner import (
        add_common_args, best_of, leg_report, pairwise_overhead_pct,
        write_report,
    )
except ImportError:  # pytest collects this file as benchmarks.bench_*
    from benchmarks.runner import (
        add_common_args, best_of, leg_report, pairwise_overhead_pct,
        write_report,
    )

from repro.core.arena import ArenaStore  # noqa: E402
from repro.obs import DEFAULT_HZ, ProvenanceStore, profiling, tracing  # noqa: E402
from repro.workloads import (  # noqa: E402
    dealer_document_program,
    dealer_document_store,
    document_kind_names,
)


def run_once(program, store, use_index: bool, provenance=None):
    start = time.perf_counter()
    result = program.run(
        store, use_dispatch_index=use_index, provenance=provenance
    )
    elapsed = time.perf_counter() - start
    if result.unconverted:
        raise AssertionError(
            f"benchmark store must be fully convertible; "
            f"{len(result.unconverted)} tree(s) left over"
        )
    return elapsed, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trees", type=int, default=10_000,
        help="extra document trees beyond the brochures (default 10000)",
    )
    parser.add_argument(
        "--brochures", type=int, default=200,
        help="brochure trees converted by Rules 1+2 (default 200)",
    )
    parser.add_argument(
        "--kinds", type=int, default=50,
        help="distinct extra document kinds, one rule each (default 50)",
    )
    add_common_args(parser, repeat_default=2)
    parser.add_argument(
        "--no-index", action="store_true",
        help="ablation: run only the unindexed configuration",
    )
    parser.add_argument(
        "--no-arena", action="store_true",
        help="ablation: skip the columnar arena leg (tree path only)",
    )
    parser.add_argument(
        "--min-arena-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) when the arena leg is less than X times "
             "faster than the indexed tree leg",
    )
    parser.add_argument(
        "--arena-json", metavar="FILE", dest="arena_json_path",
        help="write the arena-vs-indexed pairwise comparison as its "
             "own dispatch_arena artifact to FILE",
    )
    parser.add_argument(
        "--provenance", action="store_true",
        help="add an indexed leg with the per-firing provenance "
             "recorder installed and report its overhead",
    )
    parser.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="recorder sample rate for the provenance leg (default 1.0)",
    )
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None, metavar="PCT",
        help="fail (exit 1) when the provenance leg is more than PCT "
             "percent slower than the recorder-off indexed leg",
    )
    parser.add_argument(
        "--sampler", action="store_true",
        help="add an indexed leg run under the wall-clock sampling "
             "profiler and report its overhead",
    )
    parser.add_argument(
        "--sampler-hz", type=float, default=DEFAULT_HZ, metavar="HZ",
        help=f"sampling rate for the --sampler leg "
             f"(default {DEFAULT_HZ:g})",
    )
    parser.add_argument(
        "--sampler-max-overhead-pct", type=float, default=None,
        metavar="PCT",
        help="fail (exit 1) when the sampler leg is more than PCT "
             "percent slower than the profiler-off indexed leg",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.trees, args.brochures, args.kinds = 600, 30, 8
    if min(args.trees, args.brochures, args.kinds) < 0:
        parser.error("--trees/--brochures/--kinds must be >= 0")
    if args.trees and not args.kinds:
        parser.error("--kinds must be >= 1 when --trees > 0")

    kinds = document_kind_names(args.kinds)
    program = dealer_document_program(kinds)
    store = dealer_document_store(args.brochures, args.trees, kinds)
    total = len(store)
    print(
        f"car-dealer store: {total} input trees "
        f"({args.brochures} brochures + {args.trees} documents over "
        f"{args.kinds} kinds), {len(program.rules)} rules"
    )

    def best_leg(use_index: bool):
        return best_of(
            lambda: run_once(program, store, use_index)[1], args.repeat
        )

    report = {
        "benchmark": "dispatch_index",
        "scenario": {
            "input_trees": total,
            "brochures": args.brochures,
            "documents": args.trees,
            "kinds": args.kinds,
            "rules": len(program.rules),
            "repeat": args.repeat,
        },
        "legs": {},
    }

    unindexed_time, unindexed_result = best_leg(use_index=False)
    print(f"  no-index : {unindexed_time * 1000:9.1f} ms")
    report["legs"]["no_index"] = leg_report(unindexed_time, unindexed_result)
    exit_code = 0
    if not args.no_index:
        indexed_time, indexed_result = best_leg(use_index=True)
        print(f"  indexed  : {indexed_time * 1000:9.1f} ms")
        report["legs"]["indexed"] = leg_report(indexed_time, indexed_result)

        same = list(indexed_result.store.items()) == list(
            unindexed_result.store.items()
        )
        report["identical_outputs"] = same
        if not same:
            print("FAIL: indexed and unindexed runs produced different stores")
            exit_code = 1
        else:
            speedup = (
                unindexed_time / indexed_time if indexed_time else float("inf")
            )
            report["speedup"] = round(speedup, 3)
            print(f"  speedup  : {speedup:9.2f}x  (identical output stores)")

        if not args.no_arena:
            # One-time columnar encode, excluded from the timed leg: a
            # production arena comes straight from a wrapper's
            # zero-copy import, never from re-encoding a tree store.
            encode_start = time.perf_counter()
            arena_store = ArenaStore.from_data_store(store)
            encode_time = time.perf_counter() - encode_start
            arena_time, arena_result = best_of(
                lambda: run_once(program, arena_store, use_index=True)[1],
                args.repeat,
            )
            print(
                f"  arena    : {arena_time * 1000:9.1f} ms  "
                f"(one-time encode {encode_time * 1000:.1f} ms, untimed)"
            )
            leg_data = leg_report(arena_time, arena_result)
            leg_data["encode_ms"] = round(encode_time * 1000, 3)
            report["legs"]["arena"] = leg_data

            arena_same = (
                list(arena_result.store.items())
                == list(indexed_result.store.items())
                and list(arena_result.warnings)
                == list(indexed_result.warnings)
            )
            report["arena_identical_outputs"] = arena_same
            if not arena_same:
                print(
                    "FAIL: arena and indexed tree-path runs produced "
                    "different outputs"
                )
                exit_code = 1
            arena_speedup = (
                indexed_time / arena_time if arena_time else float("inf")
            )
            report["arena_speedup"] = round(arena_speedup, 3)
            print(
                f"  arena spd: {arena_speedup:9.2f}x vs the indexed "
                f"tree leg"
            )
            if (
                args.min_arena_speedup is not None
                and arena_speedup < args.min_arena_speedup
            ):
                print(
                    f"FAIL: arena speedup {arena_speedup:.2f}x is below "
                    f"the {args.min_arena_speedup:.2f}x floor"
                )
                exit_code = 1
            if args.arena_json_path:
                write_report(
                    {
                        "benchmark": "dispatch_arena",
                        "scenario": report["scenario"],
                        "legs": {
                            "indexed": report["legs"]["indexed"],
                            "arena": leg_data,
                        },
                        "identical_outputs": arena_same,
                        "arena_speedup": round(arena_speedup, 3),
                    },
                    args.arena_json_path,
                )

        if args.provenance:
            prov_state = {}

            def baseline_leg():
                _elapsed, result = run_once(program, store, use_index=True)
                return result

            def provenance_leg():
                prov = ProvenanceStore(sample_rate=args.sample_rate)
                with tracing(prov):
                    _elapsed, result = run_once(
                        program, store, use_index=True
                    )
                prov_state["prov"] = prov
                prov_state["result"] = result
                return result

            overhead_pct, base_time, prov_time = pairwise_overhead_pct(
                baseline_leg, provenance_leg, args.repeat
            )
            prov = prov_state["prov"]
            prov_result = prov_state["result"]
            print(
                f"  +recorder: {prov_time * 1000:9.1f} ms  "
                f"({overhead_pct:+.2f}% vs {base_time * 1000:.1f} ms "
                f"recorder-off, "
                f"{prov.recorded}/{prov.firings} firing(s) recorded)"
            )
            leg_data = leg_report(prov_time, prov_result)
            leg_data["sample_rate"] = args.sample_rate
            leg_data["provenance_firings"] = prov.firings
            leg_data["provenance_records"] = prov.recorded
            leg_data["baseline_wall_ms"] = round(base_time * 1000, 3)
            leg_data["overhead_pct"] = round(overhead_pct, 3)
            report["legs"]["indexed_provenance"] = leg_data

            prov_same = list(prov_result.store.items()) == list(
                indexed_result.store.items()
            )
            report["provenance_identical_outputs"] = prov_same
            if not prov_same:
                print(
                    "FAIL: provenance recording changed the output store"
                )
                exit_code = 1
            if (
                args.max_overhead_pct is not None
                and overhead_pct > args.max_overhead_pct
            ):
                print(
                    f"FAIL: recorder overhead {overhead_pct:.2f}% exceeds "
                    f"the {args.max_overhead_pct:.2f}% budget"
                )
                exit_code = 1

        if args.sampler:
            sampler_state = {}

            def plain_leg():
                _elapsed, result = run_once(program, store, use_index=True)
                return result

            def sampled_leg():
                with profiling(hz=args.sampler_hz) as profiler:
                    _elapsed, result = run_once(
                        program, store, use_index=True
                    )
                sampler_state["profile"] = profiler.profile
                sampler_state["result"] = result
                return result

            sampler_pct, plain_time, sampled_time = pairwise_overhead_pct(
                plain_leg, sampled_leg, args.repeat
            )
            profile = sampler_state["profile"]
            sampled_result = sampler_state["result"]
            print(
                f"  +sampler : {sampled_time * 1000:9.1f} ms  "
                f"({sampler_pct:+.2f}% vs {plain_time * 1000:.1f} ms "
                f"profiler-off, {profile.sample_count} sample(s) at "
                f"{args.sampler_hz:g}hz)"
            )
            leg_data = leg_report(sampled_time, sampled_result)
            leg_data["hz"] = args.sampler_hz
            leg_data["samples"] = profile.sample_count
            leg_data["baseline_wall_ms"] = round(plain_time * 1000, 3)
            leg_data["overhead_pct"] = round(sampler_pct, 3)
            report["legs"]["indexed_sampler"] = leg_data

            sampler_same = list(sampled_result.store.items()) == list(
                indexed_result.store.items()
            )
            report["sampler_identical_outputs"] = sampler_same
            if not sampler_same:
                print("FAIL: sampling changed the output store")
                exit_code = 1
            if (
                args.sampler_max_overhead_pct is not None
                and sampler_pct > args.sampler_max_overhead_pct
            ):
                print(
                    f"FAIL: sampler overhead {sampler_pct:.2f}% exceeds "
                    f"the {args.sampler_max_overhead_pct:.2f}% budget"
                )
                exit_code = 1

    write_report(report, args.json_path)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
