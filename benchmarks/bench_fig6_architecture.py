"""Experiment F6 — Figure 6: the system architecture.

Measures the cost of each architectural stage separately — import
wrappers, type checking (on demand), the interpreter, export wrappers,
the program library — so the interpreter can be seen to dominate,
wrappers and typing staying cheap as the paper's architecture intends.
"""

import pytest

from repro import YatSystem
from repro.objectdb import car_dealer_schema
from repro.sgml import brochure_dtd
from repro.wrappers import OdmgExportWrapper, SgmlImportWrapper
from repro.workloads import brochure_elements

N = 200


@pytest.fixture(scope="module")
def system():
    return YatSystem()


@pytest.fixture(scope="module")
def documents():
    return brochure_elements(N, distinct_suppliers=N // 5)


@pytest.fixture(scope="module")
def imported(documents):
    return SgmlImportWrapper(dtd=brochure_dtd()).to_store(documents)


def test_fig6_stage_import(benchmark, documents):
    wrapper = SgmlImportWrapper(dtd=brochure_dtd())
    store = benchmark(wrapper.to_store, documents)
    assert len(store) == N


def test_fig6_stage_type_check(benchmark, system):
    program = system.import_program("SgmlBrochuresToOdmg")

    def check():
        program.validate()
        return program.signature()

    signature = benchmark(check)
    assert signature.input_model.pattern_names() == ["Pbr"]


def test_fig6_stage_interpreter(benchmark, system, imported):
    program = system.import_program("SgmlBrochuresToOdmg")
    result = benchmark(program.run, imported)
    assert len(result.ids_of("Pcar")) == N


def test_fig6_stage_export(benchmark, system, imported):
    program = system.import_program("SgmlBrochuresToOdmg")
    result = program.run(imported)
    wrapper = OdmgExportWrapper(car_dealer_schema())
    objects = benchmark(wrapper.from_store, result.store)
    assert len(objects.extent("car")) == N


def test_fig6_stage_library(benchmark, system):
    def load():
        return system.import_program("O2Web")

    program = benchmark(load)
    assert program.rule_names() == [f"Web{i}" for i in range(1, 7)]
