"""Experiment C6 — Section 3.3: collection primitives.

The cost of the head collection edges — ``*`` (implicit grouping),
``{}`` (grouping with duplicate elimination) and ``[crit]`` (grouping +
ordering) — on collections of growing size and duplicate ratio, through
rule variants that only differ in the edge kind.
"""

import pytest

from repro.core.trees import Tree, atom, tree
from repro.yatl.parser import parse_program

EDGES = {"star": "*->", "group": "{}->", "order": "[V]->"}


def collection_program(edge):
    return parse_program(
        f"""
        program Collect
        rule R:
          Out(P) : list {edge} item -> V
        <=
          P : bag *-> x -> V
        end
        """
    )


def bag_of(values):
    return tree("bag", *[tree("x", Tree(v)) for v in values])


def test_sec33_edge_semantics():
    values = [3, 1, 3, 2, 1]
    star = collection_program(EDGES["star"]).run([bag_of(values)])
    group = collection_program(EDGES["group"]).run([bag_of(values)])
    order = collection_program(EDGES["order"]).run([bag_of(values)])

    def items(result):
        return [c.children[0].label for c in result.trees_of("Out")[0].children]

    # the binding set keeps one binding per distinct value
    assert items(star) == [3, 1, 2]
    assert items(group) == [3, 1, 2]
    assert items(order) == [1, 2, 3]  # ordered by the criterion


@pytest.mark.parametrize("edge", sorted(EDGES))
@pytest.mark.parametrize("size", [10, 100, 1000])
def test_sec33_collection_cost(benchmark, edge, size):
    program = collection_program(EDGES[edge])
    data = bag_of([i % (size // 2 or 1) for i in range(size)])
    result = benchmark(program.run, [data])
    assert result.trees_of("Out")[0].children


@pytest.mark.parametrize("duplicates", [1, 4, 16])
def test_sec33_duplicate_ratio(benchmark, duplicates):
    """Grouping cost under growing duplication (1000 occurrences)."""
    program = collection_program(EDGES["order"])
    values = [i // duplicates for i in range(1000)]
    result = benchmark(program.run, [bag_of(values)])
    assert len(result.trees_of("Out")[0].children) == len(set(values))
