"""Experiment F1 — Figure 1: the full translation scenario.

Relational + SGML sources → ODMG object base → HTML pages, through the
system facade, at N ∈ {10, 100, 1000} brochures. The paper presents the
scenario qualitatively; we verify the pipeline produces one object per
brochure plus shared suppliers, one page per object, and measure
end-to-end throughput.
"""

import pytest

from repro import YatSystem
from repro.objectdb import car_dealer_schema
from repro.sgml import brochure_dtd
from repro.workloads import brochure_elements

SIZES = [10, 100, 1000]


def run_scenario(system, documents):
    to_odmg = system.import_program("SgmlBrochuresToOdmg")
    objects = system.translate_to_objects(
        to_odmg, car_dealer_schema(),
        sgml_documents=documents, dtd=brochure_dtd(),
    )
    web = system.import_program("O2Web")
    return objects, system.publish_to_html(web, objects)


@pytest.fixture(scope="module")
def system():
    return YatSystem()


def test_scenario_shape(system):
    """The qualitative content of Figure 1."""
    documents = brochure_elements(10, distinct_suppliers=4)
    objects, pages = run_scenario(system, documents)
    assert len(objects.extent("car")) == 10
    assert len(objects.extent("supplier")) == 4
    assert len(pages) == 14
    assert all(text.startswith("<!DOCTYPE html>") for text in pages.values())


@pytest.mark.parametrize("size", SIZES)
def test_fig1_end_to_end(benchmark, system, size):
    documents = brochure_elements(size, distinct_suppliers=max(2, size // 5))
    objects, pages = benchmark(run_scenario, system, documents)
    assert len(pages) == size + max(2, size // 5)
