"""Experiment F3 — Figure 3: applying Rule 1 on SGML brochures.

First reproduces the exact worked example (two brochures, the shared
"VW center" supplier collapsing into s1), then sweeps brochure count
and duplicate-supplier ratio: the Skolem table is what deduplicates
suppliers, so the number of output objects tracks the distinct-name
count, not the brochure count.
"""

import pytest

from repro.core import tree, atom
from repro.workloads import brochure_trees
from tests.conftest import make_brochure


def test_fig3_exact_example(brochures_program):
    b1 = make_brochure(1, "Golf", 1995, "A great car",
                       [("VW center", "Bd Lenoir, Paris 75005")])
    b2 = make_brochure(2, "Golf", 1997, "A great car",
                       [("VW2", "Bd Leblanc, Lyon 69001"),
                        ("VW center", "Bd Lenoir, Paris 75005")])
    result = brochures_program.run([b1, b2])
    assert result.ids_of("Psup") == ["s1", "s2"]
    assert result.skolems.key_of("s1") == ("Psup", ("VW center",))
    assert result.skolems.key_of("s2") == ("Psup", ("VW2",))
    s1 = result.tree("s1")
    assert s1 == tree("class", tree("supplier",
                                    tree("name", atom("VW center")),
                                    tree("city", atom("Paris")),
                                    tree("zip", atom(75005))))


@pytest.mark.parametrize("count", [10, 100, 500])
def test_fig3_throughput(benchmark, brochures_program, count):
    inputs = brochure_trees(count, distinct_suppliers=max(2, count // 5))
    result = benchmark(brochures_program.run, inputs)
    assert len(result.ids_of("Pcar")) == count
    assert len(result.ids_of("Psup")) == max(2, count // 5)


def _distinct_names(inputs):
    from repro.core.labels import Symbol

    names = set()
    for brochure in inputs:
        for supplier in brochure.find_all(Symbol("supplier")):
            names.add(supplier.children[0].children[0].label)
    return names


@pytest.mark.parametrize("distinct", [2, 10, 50])
def test_fig3_skolem_sharing(benchmark, brochures_program, distinct):
    """100 brochures, varying how many distinct suppliers they share:
    output object count equals the distinct-name count (Skolem dedup),
    never the raw supplier-occurrence count (200)."""
    inputs = brochure_trees(100, distinct_suppliers=distinct)
    result = benchmark(brochures_program.run, inputs)
    assert len(result.ids_of("Psup")) == len(_distinct_names(inputs))


@pytest.mark.parametrize("old_ratio", [0.0, 0.5])
def test_fig3_predicate_selectivity(benchmark, brochures_program, old_ratio):
    """Year > 1975 filters bindings before Skolem evaluation: with half
    the brochures too old, fewer supplier objects are created than the
    distinct names appearing in the input."""
    inputs = brochure_trees(100, distinct_suppliers=100, old_ratio=old_ratio,
                            suppliers_per_brochure=1)
    result = benchmark(brochures_program.run, inputs)
    distinct = len(_distinct_names(inputs))
    if old_ratio == 0.0:
        assert len(result.ids_of("Psup")) == distinct
    else:
        assert len(result.ids_of("Psup")) < distinct
