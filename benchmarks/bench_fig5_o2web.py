"""Experiment F5 — Figure 5 / Section 4.1: the O2Web program.

The generic ODMG → HTML program on object graphs of growing size and on
deeply nested values (safe recursion on HtmlElement), plus the page
generation rate through the HTML export wrapper.
"""

import pytest

from repro.wrappers import HtmlExportWrapper, OdmgImportWrapper
from repro.workloads import car_object_store, deep_object_store


def test_fig5_page_structure(web_program):
    objects = car_object_store(cars=2, suppliers=2)
    store = OdmgImportWrapper().to_store(objects)
    result = web_program.run(store)
    pages = HtmlExportWrapper().export_result(result)
    assert len(pages) == 4
    car_pages = [p for p in pages.values() if "<title>car" in p]
    assert car_pages and all("<a href=" in p for p in car_pages)


@pytest.mark.parametrize("cars", [5, 50, 200])
def test_fig5_object_graphs(benchmark, web_program, cars):
    objects = car_object_store(cars=cars, suppliers=max(2, cars // 4))
    store = OdmgImportWrapper().to_store(objects)
    result = benchmark(web_program.run, store)
    assert len(result.ids_of("HtmlPage")) == len(store)


@pytest.mark.parametrize("depth", [2, 5, 8])
def test_fig5_safe_recursion_depth(benchmark, web_program, depth):
    """HtmlElement recursion over nested collections: the demand-driven
    evaluation must follow the structure down to the leaves."""
    objects = deep_object_store(depth=depth, fanout=2)
    store = OdmgImportWrapper().to_store(objects)
    result = benchmark(web_program.run, store)
    page = result.store.materialize(result.ids_of("HtmlPage")[0])
    assert page.depth() > depth  # the page nests at least as deep


@pytest.mark.parametrize("cars", [20, 100])
def test_fig5_export_rate(benchmark, web_program, cars):
    objects = car_object_store(cars=cars, suppliers=max(2, cars // 4))
    store = OdmgImportWrapper().to_store(objects)
    result = web_program.run(store)
    wrapper = HtmlExportWrapper()
    pages = benchmark(wrapper.export_result, result)
    assert len(pages) == len(store)
