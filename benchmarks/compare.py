"""The perf-regression observatory: trend + gate over ``BENCH_*.json``.

Every PR archives its benchmark report as ``BENCH_PR<n>.json`` (the
repo root holds the trajectory so far; CI uploads fresh ones per run).
Each driver reports a different schema, so nobody reads the trajectory
— which is how a 2x regression ships unnoticed. This tool closes the
loop::

    python benchmarks/compare.py BENCH_PR*.json            # trend report
    python benchmarks/compare.py BENCH_PR*.json --gate     # CI: exit 1
    python benchmarks/compare.py A.json B.json --gate --max-regression-pct 20

It extracts one *headline metric set* per benchmark family
(``dispatch_index``: indexed wall ms + speedup; ``parallel_executor``:
in-process wall ms; ``serve``: throughput + p99), orders artifacts by
the PR ordinal in the filename, and compares each artifact against the
previous one of the same family. A **gating** metric regressing more
than ``--max-regression-pct`` fails the gate.

Comparability is judged, not assumed: artifacts stamped with ``host``
info (``benchmarks/runner.py``) from *different* machine shapes are
reported but never gated (apples to oranges); artifacts missing the
stamp (pre-PR7) gate anyway — an unknown host is still the best signal
available. Scenario drift (different tree counts, client counts...)
also exempts a pair, since the workload itself changed.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: ``BENCH_PR7.json`` / ``bench_pr7_quick.json`` → ordinal 7.
_PR_RE = re.compile(r"PR(\d+)", re.IGNORECASE)

#: Scenario keys that change timing fairness but not the workload.
_SCENARIO_IGNORE = {"repeat"}


def _dig(data: Dict[str, object], path: str) -> Optional[float]:
    """``legs.indexed.wall_ms`` → the float there, or None."""
    node: object = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


#: Per-family headline metrics: (label, json path, direction, gating).
#: ``direction`` is which way is *better*; only gating metrics can fail
#: the gate — the rest are context in the trend tables.
HEADLINES: Dict[str, List[Tuple[str, str, str, bool]]] = {
    "dispatch_index": [
        ("indexed wall ms", "legs.indexed.wall_ms", "lower", True),
        ("speedup", "speedup", "higher", False),
        ("no-index wall ms", "legs.no_index.wall_ms", "lower", False),
        ("provenance overhead %",
         "legs.indexed_provenance.overhead_pct", "lower", False),
        ("sampler overhead %",
         "legs.indexed_sampler.overhead_pct", "lower", False),
    ],
    "dispatch_arena": [
        ("arena wall ms", "legs.arena.wall_ms", "lower", True),
        ("arena speedup", "arena_speedup", "higher", False),
        ("indexed wall ms", "legs.indexed.wall_ms", "lower", False),
        ("arena encode ms", "legs.arena.encode_ms", "lower", False),
    ],
    "parallel_executor": [
        ("in-process wall ms", "legs.inprocess.wall_ms", "lower", True),
    ],
    "serve": [
        ("throughput rps", "throughput_rps", "higher", True),
        ("client p99 ms", "client_latency_ms.p99", "lower", False),
    ],
    # Non-gating: the bench itself enforces the absolute <=5% budget,
    # and a relative gate over a near-zero overhead base would flap.
    "serve_alerts": [
        ("evaluator overhead %", "alerts.overhead_pct", "lower", False),
        ("evaluations under load", "alerts.evaluations", "higher", False),
    ],
    "serve_quality": [
        ("shadow overhead %", "quality.overhead_pct", "lower", False),
        ("shadow checks under load", "quality.shadow.checked",
         "higher", False),
    ],
}


def load_artifact(path: str) -> Dict[str, object]:
    """One parsed artifact with its PR ordinal (None when the filename
    carries no ``PR<n>``; such artifacts sort last, in name order)."""
    with open(path) as handle:
        data = json.load(handle)
    match = _PR_RE.search(path)
    return {
        "path": path,
        "pr": int(match.group(1)) if match else None,
        "benchmark": data.get("benchmark", "unknown"),
        "data": data,
    }


def headline(entry: Dict[str, object]) -> List[Dict[str, object]]:
    """The entry's headline metrics (absent paths skipped)."""
    rows = []
    for label, path, direction, gating in HEADLINES.get(
        entry["benchmark"], []
    ):
        value = _dig(entry["data"], path)
        if value is None:
            continue
        rows.append({
            "label": label, "path": path, "value": value,
            "direction": direction, "gating": gating,
        })
    return rows


def host_comparability(
    before: Dict[str, object], after: Dict[str, object]
) -> str:
    """``same`` / ``different`` / ``unknown`` — whether two artifacts
    ran on the same machine shape."""
    host_a = before["data"].get("host")
    host_b = after["data"].get("host")
    if not isinstance(host_a, dict) or not isinstance(host_b, dict):
        return "unknown"
    for key in ("cpu_count", "platform", "python"):
        if host_a.get(key) != host_b.get(key):
            return "different"
    return "same"


def scenarios_match(
    before: Dict[str, object], after: Dict[str, object]
) -> bool:
    """Overlapping scenario keys must agree (ignoring timing-only ones
    like ``repeat``); a missing scenario block matches anything."""
    scen_a = before["data"].get("scenario")
    scen_b = after["data"].get("scenario")
    if not isinstance(scen_a, dict) or not isinstance(scen_b, dict):
        return True
    for key in set(scen_a) & set(scen_b) - _SCENARIO_IGNORE:
        if scen_a[key] != scen_b[key]:
            return False
    return True


def _regression_pct(
    before: float, after: float, direction: str
) -> Optional[float]:
    """How much worse *after* is than *before* (positive = regressed),
    or None when the baseline is zero."""
    if before == 0:
        return None
    if direction == "lower":
        return (after - before) / abs(before) * 100
    return (before - after) / abs(before) * 100


def compare(
    entries: Sequence[Dict[str, object]],
    max_regression_pct: float = 20.0,
) -> Dict[str, object]:
    """The full trend report: per-family metric trajectories plus
    consecutive-pair comparisons and the list of gate failures."""
    families: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        families.setdefault(entry["benchmark"], []).append(entry)
    order = lambda e: (e["pr"] is None, e["pr"], e["path"])  # noqa: E731
    report: Dict[str, object] = {
        "max_regression_pct": max_regression_pct,
        "artifacts": len(entries),
        "families": {},
        "regressions": [],
    }
    for family, family_entries in sorted(families.items()):
        family_entries.sort(key=order)
        trend = [
            {
                "path": entry["path"],
                "pr": entry["pr"],
                "metrics": headline(entry),
            }
            for entry in family_entries
        ]
        comparisons = []
        for before, after in zip(family_entries, family_entries[1:]):
            hosts = host_comparability(before, after)
            same_scenario = scenarios_match(before, after)
            gated = hosts != "different" and same_scenario
            before_metrics = {m["path"]: m for m in headline(before)}
            deltas = []
            for metric in headline(after):
                base = before_metrics.get(metric["path"])
                if base is None:
                    continue
                pct = _regression_pct(
                    base["value"], metric["value"], metric["direction"]
                )
                if pct is None:
                    continue
                regressed = (
                    metric["gating"] and gated and pct > max_regression_pct
                )
                deltas.append({
                    "label": metric["label"],
                    "path": metric["path"],
                    "before": base["value"],
                    "after": metric["value"],
                    "regression_pct": round(pct, 2),
                    "gating": metric["gating"],
                    "regressed": regressed,
                })
                if regressed:
                    report["regressions"].append({
                        "benchmark": family,
                        "label": metric["label"],
                        "before_path": before["path"],
                        "after_path": after["path"],
                        "before": base["value"],
                        "after": metric["value"],
                        "regression_pct": round(pct, 2),
                    })
            comparisons.append({
                "before": before["path"],
                "after": after["path"],
                "hosts": hosts,
                "same_scenario": same_scenario,
                "gated": gated,
                "deltas": deltas,
            })
        report["families"][family] = {
            "trend": trend,
            "comparisons": comparisons,
        }
    return report


def _fmt(value: float) -> str:
    return f"{value:g}" if abs(value) < 1e6 else f"{value:.3e}"


def to_markdown(report: Dict[str, object]) -> str:
    """The human-facing trend report."""
    lines = ["# Benchmark trend report", ""]
    lines.append(
        f"{report['artifacts']} artifact(s); gate threshold "
        f"{report['max_regression_pct']:g}% on gating metrics."
    )
    for family, block in report["families"].items():
        lines += ["", f"## {family}", ""]
        labels: List[str] = []
        for point in block["trend"]:
            for metric in point["metrics"]:
                if metric["label"] not in labels:
                    labels.append(metric["label"])
        header = "| artifact | " + " | ".join(labels) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(labels) + 1))
        for point in block["trend"]:
            by_label = {m["label"]: m["value"] for m in point["metrics"]}
            cells = [
                _fmt(by_label[label]) if label in by_label else "-"
                for label in labels
            ]
            name = f"PR{point['pr']}" if point["pr"] is not None else (
                point["path"]
            )
            lines.append(f"| {name} | " + " | ".join(cells) + " |")
        for comparison in block["comparisons"]:
            notes = []
            if comparison["hosts"] == "different":
                notes.append("different hosts — not gated")
            elif comparison["hosts"] == "unknown":
                notes.append("host unknown")
            if not comparison["same_scenario"]:
                notes.append("scenario changed — not gated")
            suffix = f"  ({'; '.join(notes)})" if notes else ""
            lines.append(
                f"\n{comparison['before']} → {comparison['after']}{suffix}"
            )
            for delta in comparison["deltas"]:
                marker = " **REGRESSION**" if delta["regressed"] else ""
                lines.append(
                    f"- {delta['label']}: {_fmt(delta['before'])} → "
                    f"{_fmt(delta['after'])} "
                    f"({delta['regression_pct']:+.1f}% "
                    f"{'worse' if delta['regression_pct'] > 0 else 'better'})"
                    f"{marker}"
                )
    regressions = report["regressions"]
    lines += ["", "## Gate", ""]
    if regressions:
        for regression in regressions:
            lines.append(
                f"- FAIL {regression['benchmark']} "
                f"{regression['label']}: {_fmt(regression['before'])} → "
                f"{_fmt(regression['after'])} "
                f"(+{regression['regression_pct']:.1f}%, "
                f"{regression['before_path']} → "
                f"{regression['after_path']})"
            )
    else:
        lines.append("No gating regressions.")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", metavar="BENCH.json",
                        help="benchmark artifacts (PR ordinal read from "
                             "the filename)")
    parser.add_argument("--max-regression-pct", type=float, default=20.0,
                        metavar="PCT",
                        help="gating-metric budget per consecutive pair "
                             "(default 20)")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 when any gating regression exceeds "
                             "the budget")
    parser.add_argument("--json", metavar="FILE", dest="json_path",
                        help="also write the full report as JSON to FILE")
    parser.add_argument("--markdown", metavar="FILE", dest="markdown_path",
                        help="also write the markdown report to FILE")
    args = parser.parse_args(argv)

    entries = [load_artifact(path) for path in args.artifacts]
    report = compare(entries, max_regression_pct=args.max_regression_pct)
    markdown = to_markdown(report)
    print(markdown, end="")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.markdown_path:
        with open(args.markdown_path, "w") as handle:
            handle.write(markdown)
    if args.gate and report["regressions"]:
        print(
            f"gate: {len(report['regressions'])} regression(s) over the "
            f"{args.max_regression_pct:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
