"""Experiment C3 — Section 3.4: detecting cyclic programs.

Static analysis cost on programs of growing size: acyclic chains,
safe-recursive programs (accepted), and truly cyclic programs
(rejected). The analysis is the entry gate of every run, so it must
stay linear-ish in the program size.
"""

import pytest

from repro.errors import CyclicProgramError
from repro.yatl.cycles import analyze_cycles, check_cycles
from repro.yatl.parser import parse_program


def chain_program(length):
    """F0 derefs F1 derefs F2 ... (acyclic chain of length rules)."""
    lines = ["program Chain"]
    for index in range(length):
        target = f"F{index + 1}(X)" if index + 1 < length else '"leaf"'
        lines.append(f"rule R{index}:")
        lines.append(f"  F{index}(P) : wrap -> {target}")
        lines.append("<=")
        lines.append(f"  P : a{index} -> ^X")
        lines.append("")
    lines.append("end")
    return parse_program("\n".join(lines))


def recursive_program(width):
    """width safe-recursive functors, each recursing on subtrees."""
    lines = ["program Recursive"]
    for index in range(width):
        lines.append(f"rule R{index}:")
        lines.append(f"  F{index}(P) : wrap *-> F{index}(X)")
        lines.append("<=")
        lines.append(f"  P : list{index} < *-> ^X >")
        lines.append("")
    lines.append("end")
    return parse_program("\n".join(lines))


def cyclic_program():
    return parse_program(
        """
        program Cyclic
        rule A:
          F(P) : wrap -> G(P)
        <=
          P : a -> ^X
        rule B:
          G(P) : wrap -> F(P)
        <=
          P : a -> ^X
        end
        """
    )


def test_sec34_verdicts():
    assert analyze_cycles(chain_program(5).rules).is_acceptable
    report = analyze_cycles(recursive_program(5).rules)
    assert report.cycles and report.is_acceptable
    assert not analyze_cycles(cyclic_program().rules).is_acceptable
    with pytest.raises(CyclicProgramError):
        check_cycles(cyclic_program().rules)


@pytest.mark.parametrize("size", [10, 50, 200])
def test_sec34_acyclic_analysis(benchmark, size):
    program = chain_program(size)
    report = benchmark(analyze_cycles, program.rules)
    assert report.is_acceptable and not report.cycles


@pytest.mark.parametrize("size", [10, 50, 200])
def test_sec34_safe_recursive_analysis(benchmark, size):
    program = recursive_program(size)
    report = benchmark(analyze_cycles, program.rules)
    assert report.is_acceptable and len(report.cycles) == size


def test_sec34_rejection_cost(benchmark):
    program = cyclic_program()
    report = benchmark(analyze_cycles, program.rules)
    assert not report.is_acceptable
