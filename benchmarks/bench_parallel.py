"""Scaling benchmark for the multi-process parallel conversion executor.

The dispatch-index car-dealer scenario (Section 3.1 brochures plus
thousands of heterogeneous dealership documents), run four ways: the
plain in-process interpreter, then the sharded executor at 1, 2 and 4
workers with the default chunk plan. The chunk plan depends only on the
input count, never on the worker count, so every workers=N leg must
produce a byte-identical output store — that identity is this
benchmark's hard gate, checked on every run. The second gate
(``--max-overhead-pct``) bounds what sharding itself costs: workers=1
executes the same chunks serially through the same merge, so its
overhead against the in-process leg is pure sharding+reconciliation
tax.

Run standalone (not under pytest)::

    python benchmarks/bench_parallel.py                    # full: >=10k trees
    python benchmarks/bench_parallel.py --quick            # CI smoke
    python benchmarks/bench_parallel.py --json BENCH_PR5.json

The report records ``cpu_count`` alongside the scaling curve: on a
single-core container the workers=2/4 legs cannot speed up (the curve
documents that honestly), while multi-core CI runners show the real
scaling.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time

try:
    from runner import (
        add_common_args, best_of, leg_report, pairwise_overhead_pct,
        write_report,
    )
except ImportError:  # pytest collects this file as benchmarks.bench_*
    from benchmarks.runner import (
        add_common_args, best_of, leg_report, pairwise_overhead_pct,
        write_report,
    )

from repro.core.arena import ArenaShard, ArenaStore  # noqa: E402
from repro.parallel import plan_chunks, resolve_chunk_size  # noqa: E402
from repro.workloads import (  # noqa: E402
    dealer_document_program,
    dealer_document_store,
    document_kind_names,
)

#: Shard/merge accounting recorded per leg on top of the interpreter
#: metrics (counters only — histograms are reported by the registry,
#: not per-leg totals).
PARALLEL_METRICS = [
    "parallel.runs",
    "parallel.shards",
    "parallel.fallback.inprocess",
    "yatl.batches",
]


def materialized_outputs(result):
    """Store contents with every reference chased — the id-independent
    view two runs must agree on even when Skolem ids differ."""
    return sorted(
        str(result.store.materialize(name)) for name, _ in result.store.items()
    )


def byte_view(result):
    """The exact observable output: named trees in order, warnings,
    unconverted names. Two runs are byte-identical iff these match."""
    return (
        list(result.store.items()),
        list(result.warnings),
        list(result.unconverted),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trees", type=int, default=10_000,
        help="extra document trees beyond the brochures (default 10000)",
    )
    parser.add_argument(
        "--brochures", type=int, default=200,
        help="brochure trees converted by Rules 1+2 (default 200)",
    )
    parser.add_argument(
        "--kinds", type=int, default=50,
        help="distinct extra document kinds, one rule each (default 50)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        metavar="N", help="worker counts to time (default: 1 2 4)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="inputs per shard (default: the executor's heuristic)",
    )
    add_common_args(parser, repeat_default=2)
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None, metavar="PCT",
        help="fail (exit 1) when the workers=1 sharded leg is more than "
             "PCT percent slower than the plain in-process leg",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) when the largest worker count is less than "
             "X times faster than workers=1 (only meaningful on "
             "multi-core machines)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.trees, args.brochures, args.kinds = 600, 30, 8
    if min(args.trees, args.brochures, args.kinds) < 0:
        parser.error("--trees/--brochures/--kinds must be >= 0")
    if any(n < 1 for n in args.workers):
        parser.error("--workers counts must be >= 1")
    if 1 not in args.workers:
        args.workers = [1] + args.workers

    kinds = document_kind_names(args.kinds)
    program = dealer_document_program(kinds)
    store = dealer_document_store(args.brochures, args.trees, kinds)
    total = len(store)
    cpu_count = os.cpu_count() or 1
    print(
        f"car-dealer store: {total} input trees "
        f"({args.brochures} brochures + {args.trees} documents over "
        f"{args.kinds} kinds), {len(program.rules)} rules, "
        f"{cpu_count} cpu(s)"
    )

    def converted(result):
        if result.unconverted:
            raise AssertionError(
                f"benchmark store must be fully convertible; "
                f"{len(result.unconverted)} tree(s) left over"
            )
        return result

    def inprocess_leg():
        return converted(program.run(store))

    def sharded_leg(workers):
        return converted(
            program.run(store, workers=workers, chunk_size=args.chunk_size)
        )

    report = {
        "benchmark": "parallel_executor",
        "cpu_count": cpu_count,
        "scenario": {
            "input_trees": total,
            "brochures": args.brochures,
            "documents": args.trees,
            "kinds": args.kinds,
            "rules": len(program.rules),
            "chunk_size": args.chunk_size,
            "repeat": args.repeat,
        },
        "legs": {},
        "speedup_vs_workers_1": {},
    }
    metric_keys = None  # leg_report's defaults
    exit_code = 0

    inprocess_time, inprocess_result = best_of(inprocess_leg, args.repeat)
    print(f"  inprocess : {inprocess_time * 1000:9.1f} ms")
    report["legs"]["inprocess"] = leg_report(
        inprocess_time, inprocess_result, metric_keys
    )

    worker_times = {}
    worker_results = {}
    for workers in sorted(set(args.workers)):
        elapsed, result = best_of(
            lambda w=workers: sharded_leg(w), args.repeat
        )
        worker_times[workers] = elapsed
        worker_results[workers] = result
        parallel = getattr(result, "parallel", None) or {}
        leg = leg_report(elapsed, result, metric_keys)
        for name in PARALLEL_METRICS:
            metric = result.metrics.get(name)
            if metric is not None:
                leg[name] = metric.total()
        leg["mode"] = parallel.get("mode")
        leg["shards"] = parallel.get("shards")
        report["legs"][f"workers_{workers}"] = leg
        print(
            f"  workers={workers} : {elapsed * 1000:9.1f} ms  "
            f"({parallel.get('shards', '?')} shard(s), "
            f"{parallel.get('mode', '?')})"
        )

    # Hard gate: every workers=N leg byte-identical to workers=1.
    reference = byte_view(worker_results[1])
    for workers, result in sorted(worker_results.items()):
        if byte_view(result) != reference:
            print(
                f"FAIL: workers={workers} output differs from workers=1 "
                f"(determinism contract broken)"
            )
            exit_code = 1
    identical = exit_code == 0
    report["identical_outputs"] = identical
    if identical:
        print(
            f"  identity  : {len(worker_results)} worker leg(s) "
            f"byte-identical (store, warnings, unconverted)"
        )

    # The sharded and in-process runs may allocate Skolem ids in a
    # different order; the reference-chased view must still agree.
    equivalent = materialized_outputs(worker_results[1]) == (
        materialized_outputs(inprocess_result)
    )
    report["inprocess_equivalent"] = equivalent
    if not equivalent:
        print("FAIL: sharded output is not equivalent to in-process output")
        exit_code = 1

    for workers, elapsed in sorted(worker_times.items()):
        if workers == 1:
            continue
        speedup = worker_times[1] / elapsed if elapsed else float("inf")
        report["speedup_vs_workers_1"][f"workers_{workers}"] = round(
            speedup, 3
        )
        print(f"  speedup   : workers={workers} {speedup:9.2f}x vs workers=1")

    if args.max_overhead_pct is not None:
        median_pct, base_time, shard_time = pairwise_overhead_pct(
            inprocess_leg, lambda: sharded_leg(1), args.repeat
        )
        # Gate on best-vs-best: on the small quick sizes a single
        # scheduler hiccup is a double-digit fraction of a ~30 ms leg,
        # so the per-pair ratios (and their median) swing wildly even
        # when both legs execute the same code (the fallback path).
        # min-of-N filters that noise; the median is kept for context.
        overhead_pct = (
            (shard_time - base_time) / base_time * 100 if base_time else 0.0
        )
        report["sharding_overhead_pct"] = round(overhead_pct, 3)
        report["sharding_overhead_median_pairwise_pct"] = round(median_pct, 3)
        print(
            f"  overhead  : {overhead_pct:+.2f}% workers=1 "
            f"({shard_time * 1000:.1f} ms) vs in-process "
            f"({base_time * 1000:.1f} ms)"
        )
        if overhead_pct > args.max_overhead_pct:
            print(
                f"FAIL: sharding overhead {overhead_pct:.2f}% exceeds the "
                f"{args.max_overhead_pct:.2f}% budget"
            )
            exit_code = 1

    # Per-shard serialization: what the same chunk plan costs to ship
    # across the process boundary in each representation — tree chunks
    # (lists of named Tree objects, pickled node by node) versus
    # ArenaShard flat buffers (columns pickled as contiguous arrays).
    # Measured and reported for the trend tables, never gated.
    def timed_pickle(payloads):
        start = time.perf_counter()
        blobs = [pickle.dumps(payload) for payload in payloads]
        dump_s = time.perf_counter() - start
        start = time.perf_counter()
        for blob in blobs:
            pickle.loads(blob)
        load_s = time.perf_counter() - start
        return dump_s, load_s, sum(len(blob) for blob in blobs)

    chunk_plan = plan_chunks(total, resolve_chunk_size(total, args.chunk_size))
    item_list = store.items()
    tree_dump_s, tree_load_s, tree_bytes = timed_pickle(
        [item_list[start:stop] for start, stop in chunk_plan]
    )
    encode_start = time.perf_counter()
    arena_store = ArenaStore.from_data_store(store)
    encode_s = time.perf_counter() - encode_start
    arena_dump_s, arena_load_s, arena_bytes = timed_pickle(
        [ArenaShard.slice(arena_store, start, stop)
         for start, stop in chunk_plan]
    )
    report["serialization"] = {
        "shards": len(chunk_plan),
        "tree_pickle_ms": round(tree_dump_s * 1000, 3),
        "tree_unpickle_ms": round(tree_load_s * 1000, 3),
        "tree_bytes": tree_bytes,
        "arena_pickle_ms": round(arena_dump_s * 1000, 3),
        "arena_unpickle_ms": round(arena_load_s * 1000, 3),
        "arena_bytes": arena_bytes,
        "arena_encode_ms": round(encode_s * 1000, 3),
        "bytes_ratio": (
            round(tree_bytes / arena_bytes, 3) if arena_bytes else None
        ),
        "pickle_time_ratio": (
            round(tree_dump_s / arena_dump_s, 3) if arena_dump_s else None
        ),
    }
    print(
        f"  serialize : {len(chunk_plan)} shard(s)  "
        f"trees {tree_bytes / 1024:.0f} KiB in {tree_dump_s * 1000:.1f} ms, "
        f"arena {arena_bytes / 1024:.0f} KiB in {arena_dump_s * 1000:.1f} ms "
        f"({report['serialization']['bytes_ratio']}x bytes, "
        f"{report['serialization']['pickle_time_ratio']}x dump time)"
    )

    if args.min_speedup is not None:
        top = max(worker_times)
        speedup = report["speedup_vs_workers_1"].get(f"workers_{top}", 1.0)
        if speedup < args.min_speedup:
            print(
                f"FAIL: workers={top} speedup {speedup:.2f}x is below the "
                f"{args.min_speedup:.2f}x floor ({cpu_count} cpu(s))"
            )
            exit_code = 1

    write_report(report, args.json_path)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
