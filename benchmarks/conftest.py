"""Shared benchmark fixtures and reporting helpers.

Each benchmark file regenerates one figure of the paper (or one
measurable claim of the prose): it first asserts the *behaviour* the
figure shows, then measures the performance dimension attached to it.
EXPERIMENTS.md records the paper-claim vs. measured outcomes.
"""

import pytest

from repro.library import o2web_program, sgml_brochures_to_odmg


def report(title, rows):
    """Print a small table alongside the benchmark results."""
    print(f"\n[{title}]")
    for row in rows:
        print("   ", row)


@pytest.fixture(scope="session")
def brochures_program():
    return sgml_brochures_to_odmg()


@pytest.fixture(scope="session")
def web_program():
    return o2web_program()
