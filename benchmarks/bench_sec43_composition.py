"""Experiment C2 — Section 4.3: composition avoids intermediate work.

"A first solution would be to apply successively the two programs.
However, this would result in unnecessary processing, since the system
would create intermediate ODMG patterns."

The headline performance claim: the composed one-step program must beat
the sequential two-step pipeline (which materializes the ODMG store),
and the gap should persist across input sizes. The composition step
itself is also measured (it is a one-off specification-time cost).
"""

import pytest

from repro.workloads import brochure_trees

SIZES = [10, 50, 200]


@pytest.fixture(scope="module")
def composed(brochures_program, web_program):
    return brochures_program.composed_with(web_program, name="SgmlToHtml")


def test_sec43_composition_correct(composed, brochures_program, web_program):
    inputs = brochure_trees(10, distinct_suppliers=4)
    intermediate = brochures_program.run(inputs)
    sequential = web_program.run(intermediate.store)
    direct = composed.run(inputs)

    def pages(result):
        return sorted(
            str(result.store.materialize(i)) for i in result.ids_of("HtmlPage")
        )

    assert pages(sequential) == pages(direct)
    # the composed program creates no intermediate ODMG patterns at all
    assert not direct.ids_of("Pcar") and not direct.ids_of("Psup")


@pytest.mark.parametrize("size", SIZES)
def test_sec43_sequential(benchmark, brochures_program, web_program, size):
    inputs = brochure_trees(size, distinct_suppliers=max(2, size // 5))

    def two_step():
        intermediate = brochures_program.run(inputs)
        return web_program.run(intermediate.store)

    result = benchmark(two_step)
    assert result.ids_of("HtmlPage")


@pytest.mark.parametrize("size", SIZES)
def test_sec43_composed(benchmark, composed, size):
    inputs = brochure_trees(size, distinct_suppliers=max(2, size // 5))
    result = benchmark(composed.run, inputs)
    assert result.ids_of("HtmlPage")


def test_sec43_composition_cost(benchmark, brochures_program, web_program):
    """Building the composed program (a specification-time operation)."""
    composed = benchmark(
        brochures_program.composed_with, web_program
    )
    assert len(composed.rules) == 2


def test_sec43_composed_is_faster(composed, brochures_program, web_program):
    """The claim itself, asserted with a direct timing comparison."""
    import time

    inputs = brochure_trees(200, distinct_suppliers=40)

    def timed(fn):
        start = time.perf_counter()
        for _ in range(3):
            fn()
        return time.perf_counter() - start

    sequential = timed(
        lambda: web_program.run(brochures_program.run(inputs).store)
    )
    direct = timed(lambda: composed.run(inputs))
    print(f"\n[sec4.3] sequential={sequential:.3f}s composed={direct:.3f}s "
          f"speedup={sequential / direct:.2f}x")
    assert direct < sequential
