"""Experiment C1 — Section 4.2: combined programs and rule hierarchies.

"For a given input pattern, the more specific rules (leaves in the
hierarchy) matching the input are applied first."

Combines the WebCar specialization with the general Web program and
measures (a) hierarchy construction cost as the rule count grows and
(b) run-time dispatch overhead of combined vs. plain programs, checking
the specific rule wins on car objects while suppliers keep the general
rendering.
"""

import pytest

from repro.core.models import car_schema_model
from repro.wrappers import OdmgImportWrapper
from repro.workloads import car_object_store
from repro.yatl.hierarchy import Hierarchy
from repro.yatl.parser import parse_rule
from repro.yatl.program import Program


@pytest.fixture(scope="module")
def combined(web_program):
    specialized = web_program.instantiated_on(
        car_schema_model().pattern("Pcar"), name="CarOnly"
    )
    return specialized.combined_with(web_program)


def test_sec42_specific_rule_wins(combined, web_program):
    objects = car_object_store(cars=3, suppliers=2)
    store = OdmgImportWrapper().to_store(objects)
    result = combined.run(store)
    # one page per object; the car pages were produced by the derived
    # rule (same output here, but dispatch went through the hierarchy)
    assert len(result.ids_of("HtmlPage")) == 5
    hierarchy = combined.hierarchy()
    [derived_name] = [n for n in combined.rule_names() if "Pcar" in n]
    assert hierarchy.is_more_specific(derived_name, "Web1")


@pytest.mark.parametrize("rules", [6, 20, 60])
def test_sec42_hierarchy_construction(benchmark, web_program, rules):
    """Hierarchy construction is quadratic in the rule count; measure it."""
    base = list(web_program.rules)
    extra = []
    for index in range(rules - len(base)):
        extra.append(
            parse_rule(
                f"rule Extra{index}:\n"
                f"  HtmlElement(Pcoll) : pre{index} *-> li -> HtmlElement(P2)\n"
                f"<=\n"
                f"  Pcoll : kind{index} < *-> ^P2 >"
            )
        )
    all_rules = base + extra
    hierarchy = benchmark(Hierarchy, all_rules)
    assert hierarchy.specific_first()


@pytest.mark.parametrize("program_kind", ["plain", "combined"])
def test_sec42_dispatch_overhead(benchmark, web_program, combined, program_kind):
    """Run-time cost of dispatching through the larger combined rule set
    versus the plain general program, on the same input."""
    objects = car_object_store(cars=50, suppliers=10)
    store = OdmgImportWrapper().to_store(objects)
    program = web_program if program_kind == "plain" else combined
    result = benchmark(program.run, store)
    assert len(result.ids_of("HtmlPage")) == 60


def test_sec42_enforced_order():
    """The user may force rule order, transgressing declarativity."""
    from repro.core.trees import atom, tree

    program_text = """
    program Enforced
    rule A:
      F(P) : from_a
    <=
      P : x -> V
    rule B:
      F(P) : from_b
    <=
      P : x -> V
    hierarchy A under B
    end
    """
    from repro.yatl.parser import parse_program

    program = parse_program(program_text)
    result = program.run([tree("x", atom(1))])
    assert [str(t.label) for t in result.trees_of("F")] == ["from_a"]
