"""Experiment F4 — Figure 4: transposing a matrix with Rule 5.

Reproduces the paper's 3x2 example exactly, then sweeps matrix size.
numpy's transpose serves as the sanity baseline: YATL's declarative
index-edge transpose is of course slower than a memcpy-style transpose,
but must scale in O(cells · log) and stay an involution.
"""

import numpy
import pytest

from repro.core import Tree, atom, tree
from repro.library import matrix_transpose_program
from repro.workloads import sales_matrix


def test_fig4_exact_example():
    matrix = tree(
        "matrix",
        tree(1995, tree("golf", atom(10)), tree("polo", atom(20)),
             tree("passat", atom(30))),
        tree(1996, tree("golf", atom(11)), tree("polo", atom(21)),
             tree("passat", atom(31))),
    )
    result = matrix_transpose_program().run([matrix])
    assert result.trees_of("New")[0] == tree(
        "matrix",
        tree("golf", tree(1995, atom(10)), tree(1996, atom(11))),
        tree("polo", tree(1995, atom(20)), tree(1996, atom(21))),
        tree("passat", tree(1995, atom(30)), tree(1996, atom(31))),
    )


@pytest.mark.parametrize("rows,cols", [(3, 2), (10, 10), (40, 25)])
def test_fig4_yatl_transpose(benchmark, rows, cols):
    program = matrix_transpose_program()
    matrix = sales_matrix(rows, cols)
    result = benchmark(program.run, [matrix])
    transposed = result.trees_of("New")[0]
    assert len(transposed.children) == rows
    assert all(len(row.children) == cols for row in transposed.children)


@pytest.mark.parametrize("rows,cols", [(10, 10), (40, 25)])
def test_fig4_numpy_baseline(benchmark, rows, cols):
    """Reference point: the same transpose as a dense array operation."""
    array = numpy.arange(rows * cols).reshape(rows, cols)
    result = benchmark(lambda: numpy.ascontiguousarray(array.T))
    assert result.shape == (cols, rows)


def test_fig4_involution():
    program = matrix_transpose_program()
    matrix = sales_matrix(7, 5)
    once = program.run([matrix]).trees_of("New")[0]
    twice = program.run([once]).trees_of("New")[0]
    assert twice == matrix
