"""Experiment C5 — Section 3.2: Rule 3's heterogeneous join.

One rule over two sources: SGML brochures and the relational
suppliers/cars tables, joined through shared variables and the
``sameaddress`` resolver. Sweeps source sizes and join selectivity.
"""

import pytest

from repro import YatSystem
from repro.library import brochures_rule3_program
from repro.sgml import brochure_dtd
from repro.workloads import brochure_elements, dealer_database


@pytest.fixture(scope="module")
def system():
    return YatSystem()


def merged_store(system, brochures, suppliers):
    documents = brochure_elements(
        brochures, distinct_suppliers=suppliers, suppliers_per_brochure=1
    )
    database = dealer_database(suppliers=suppliers, cars=brochures)
    sgml_store = system.import_sgml(documents, brochure_dtd(),
                                    coerce_numbers=False)
    rel_store = system.import_relational(database)
    return system.merge_stores(sgml_store, rel_store)


def test_sec32_join_produces_integrated_cars(system):
    store = merged_store(system, brochures=8, suppliers=4)
    result = brochures_rule3_program().run(store)
    cars = result.ids_of("Pcar")
    assert cars
    # every car is keyed by the relational cid (an int), proving the
    # join went through the cars table
    for identifier in cars:
        functor, args = result.skolems.key_of(identifier)
        assert functor == "Pcar" and isinstance(args[0], int)


@pytest.mark.parametrize("brochures,suppliers", [(10, 4), (50, 10), (100, 20)])
def test_sec32_join_scaling(benchmark, system, brochures, suppliers):
    store = merged_store(system, brochures, suppliers)
    program = brochures_rule3_program()
    result = benchmark(program.run, store)
    assert result.ids_of("Pcar")


def test_sec32_sameaddress_prunes(system):
    """Mismatched addresses break the join even when names coincide."""
    from repro.relational import Database, dealer_schema
    from tests.conftest import make_brochure

    database = Database(dealer_schema())
    database.insert("suppliers", 1, "VW center", "Paris", "Bd Lenoir", "01")
    database.insert("cars", 42, "1")
    rel_store = system.import_relational(database)
    brochure = make_brochure(
        "1", "Golf", 1995, "d",
        [("VW center", "Completely Elsewhere, Nice 06000")],
    )
    rel_store.add("b1", brochure)
    result = brochures_rule3_program().run(rel_store)
    assert not result.ids_of("Pcar")
