"""Shared harness for the standalone ``benchmarks/bench_*.py`` drivers.

Every driver used to re-implement the same boilerplate: the ``src/``
path bootstrap, ``--json``/``--repeat``/``--quick`` flags, best-of-N
timing with warmup, per-leg metric extraction, pair-wise overhead
measurement, and JSON report writing. This module is that boilerplate,
once. Importing it makes ``repro`` importable (the path bootstrap runs
at import time), so drivers start with::

    from runner import add_common_args, best_of, leg_report, write_report

Benchmarks remain runnable standalone (``python benchmarks/bench_x.py``)
and under pytest collection (they only execute under ``__main__``).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: The run metrics every leg report extracts when present (the
#: observability catalog's interpreter family; see docs/OBSERVABILITY.md).
KEY_METRICS = [
    "yatl.inputs.total",
    "yatl.inputs.converted",
    "yatl.outputs.trees",
    "yatl.rule.applications",
    "yatl.rule.bindings_matched",
    "yatl.dispatch.indexed_calls",
    "yatl.dispatch.unindexed_calls",
    "yatl.dispatch.subjects_considered",
    "yatl.dispatch.subjects_admitted",
    "yatl.dispatch.hit_ratio",
    "yatl.dispatch.candidate_reduction_ratio",
    "yatl.skolem.ids_fresh",
    "yatl.skolem.ids_reused",
    "yatl.demand.iterations",
    "yatl.match.coverage_memo_hits",
]


def add_common_args(parser, repeat_default: int = 2) -> None:
    """The flags every driver shares: ``--repeat``, ``--quick``,
    ``--json``."""
    parser.add_argument(
        "--repeat", type=int, default=repeat_default,
        help=f"timed repetitions per configuration; best is reported "
             f"(default {repeat_default})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke sizes for CI (overrides the scale flags)",
    )
    parser.add_argument(
        "--json", metavar="FILE", dest="json_path",
        help="write timings and key run metrics to FILE as JSON",
    )


def timed(fn: Callable[[], object]) -> Tuple[float, object]:
    """One timed call: ``(wall seconds, fn's return value)``."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def best_of(
    fn: Callable[[], object], repeat: int, warmup: int = 0
) -> Tuple[float, object]:
    """Best wall time over ``repeat`` timed calls (after ``warmup``
    untimed ones); returns ``(best seconds, last result)``."""
    for _ in range(max(0, warmup)):
        fn()
    timings: List[float] = []
    value: object = None
    for _ in range(max(1, repeat)):
        elapsed, value = timed(fn)
        timings.append(elapsed)
    return min(timings), value


def pairwise_overhead_pct(
    baseline: Callable[[], object],
    candidate: Callable[[], object],
    repeat: int,
) -> Tuple[float, float, float]:
    """Median per-pair overhead of *candidate* over *baseline*.

    Each repetition runs both legs back to back with alternating order,
    so both see the same machine conditions; the median of the per-pair
    ratios survives scheduler outliers that would dominate a
    min-of-legs comparison of a few-percent delta. Returns
    ``(overhead_pct, best_baseline_s, best_candidate_s)``.
    """
    base_times: List[float] = []
    cand_times: List[float] = []
    overheads: List[float] = []
    for repetition in range(max(1, repeat)):
        legs = (baseline, candidate) if repetition % 2 == 0 else (
            candidate, baseline
        )
        for leg in legs:
            elapsed, _ = timed(leg)
            (base_times if leg is baseline else cand_times).append(elapsed)
        if base_times[-1]:
            overheads.append(
                (cand_times[-1] - base_times[-1]) / base_times[-1] * 100
            )
    overhead = statistics.median(overheads) if overheads else 0.0
    return overhead, min(base_times), min(cand_times)


def leg_report(
    elapsed: float, result, keys: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """``wall_ms`` plus the leg's key metric totals (metrics read from
    ``result.metrics``; absent metrics are skipped)."""
    report: Dict[str, object] = {"wall_ms": round(elapsed * 1000, 3)}
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        for name in (keys if keys is not None else KEY_METRICS):
            metric = metrics.get(name)
            if metric is not None:
                report[name] = metric.total()
    return report


def _git_sha() -> Optional[str]:
    """The current commit, or None outside a work tree / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_info() -> Dict[str, object]:
    """Where and on what a benchmark ran — stamped into every report so
    ``benchmarks/compare.py`` can tell comparable artifacts (same
    machine shape) from apples-to-oranges ones."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": _git_sha(),
    }


def write_report(report: Dict[str, object], json_path: Optional[str]) -> None:
    """Write the JSON report when ``--json`` was given (host-stamped)."""
    if not json_path:
        return
    report.setdefault("host", host_info())
    with open(json_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  json     : {json_path}")


def percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile over pre-sorted samples."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(quantile * (len(sorted_values) - 1)))))
    return sorted_values[index]
