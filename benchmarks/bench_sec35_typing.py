"""Experiment C4 — Section 3.5: optional typing.

"It is important to understand that typing in YAT is in no way
constraining. Programs do not need it to be executed."

Measures: signature inference cost, the static model checks, and the
run-time overhead of the unconverted-input tracking (runtime_typing on
vs. off) — typing must be cheap enough to be "called on demand".
"""

import pytest

from repro.core.models import odmg_model, sgml_model, yat_model
from repro.workloads import brochure_trees
from repro.yatl.typing import (
    check_input_against,
    check_output_against,
    infer_signature,
)


def test_sec35_signature_content(brochures_program):
    signature = brochures_program.signature()
    assert signature.input_model.pattern_names() == ["Pbr"]
    assert set(signature.output_model.pattern_names()) == {"Pcar", "Psup"}


def test_sec35_inference_cost(benchmark, brochures_program, web_program):
    def infer_both():
        infer_signature(brochures_program.rules, brochures_program.registry)
        return infer_signature(web_program.rules, web_program.registry)

    signature = benchmark(infer_both)
    assert "HtmlPage" in signature.output_model.pattern_names()


def test_sec35_model_checks(benchmark, brochures_program):
    signature = brochures_program.signature()

    def checks():
        check_input_against(signature, sgml_model())
        check_output_against(signature, odmg_model())
        check_output_against(signature, yat_model())

    benchmark(checks)


@pytest.mark.parametrize("runtime_typing", [False, True],
                         ids=["typing-off", "typing-on"])
def test_sec35_runtime_overhead(benchmark, brochures_program, runtime_typing):
    """Run-time typing on matched inputs: pure bookkeeping overhead."""
    inputs = brochure_trees(100, distinct_suppliers=20)
    result = benchmark(
        brochures_program.run, inputs, runtime_typing=runtime_typing
    )
    assert not result.unconverted


def test_sec35_untyped_programs_still_run(brochures_program):
    """Unmatched data is skipped silently without runtime typing."""
    from repro.core.trees import atom, tree

    stray = tree("unrelated", atom(1))
    inputs = brochure_trees(3) + [stray]
    result = brochures_program.run(inputs)
    assert result.unconverted == [stray]
    assert len(result.ids_of("Pcar")) == 3
