"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — static validation (Section 3.4) before every run: cheap enough to
     keep on by default?
A2 — Skolem identity keying: value-keyed Skolems (``Psup(SN)``)
     deduplicate shared suppliers; keying by the whole brochure
     (``Psup(Pbr, SN)``) disables sharing. Measures the cost/size
     impact of the paper's "explicit Skolem functions" design.
A3 — targeted evaluation (future work): materializing one queried
     functor vs. everything, on a program with several outputs.
"""

import pytest

from repro.workloads import brochure_trees
from repro.yatl.parser import parse_program

# --- A1: validation overhead -------------------------------------------------


@pytest.mark.parametrize("validate", [True, False], ids=["validate", "no-validate"])
def test_ablation_validation(benchmark, brochures_program, validate):
    inputs = brochure_trees(50, distinct_suppliers=10)
    result = benchmark(brochures_program.run, inputs, validate=validate)
    assert result.ids_of("Pcar")


# --- A2: Skolem keying -------------------------------------------------------

SHARED = """
program Shared
rule R:
  Psup(SN) : class -> supplier -> SN
<=
  Pbr : brochure < -> number -> Num, -> title -> T, -> model -> Y,
                   -> desc -> D,
                   -> spplrs *-> supplier < -> name -> SN, -> address -> A > >
end
"""

UNSHARED = """
program Unshared
rule R:
  Psup(Num, SN) : class -> supplier -> SN
<=
  Pbr : brochure < -> number -> Num, -> title -> T, -> model -> Y,
                   -> desc -> D,
                   -> spplrs *-> supplier < -> name -> SN, -> address -> A > >
end
"""


def test_ablation_skolem_sharing_semantics():
    inputs = brochure_trees(50, distinct_suppliers=5)
    shared = parse_program(SHARED).run(inputs)
    unshared = parse_program(UNSHARED).run(inputs)
    assert len(shared.ids_of("Psup")) == 5
    assert len(unshared.ids_of("Psup")) == 100  # 50 brochures x 2 suppliers


@pytest.mark.parametrize("text", [SHARED, UNSHARED], ids=["shared", "unshared"])
def test_ablation_skolem_keying(benchmark, text):
    program = parse_program(text)
    inputs = brochure_trees(100, distinct_suppliers=5)
    result = benchmark(program.run, inputs)
    assert result.ids_of("Psup")


# --- A3: targeted evaluation ---------------------------------------------------

MULTI_OUTPUT = """
program Multi
rule Cars:
  Pcar(Pbr) :
    class -> car < -> name -> T, -> suppliers -> set {}-> &Psup(SN) >
<=
  Pbr : brochure < -> number -> Num, -> title -> T, -> model -> Y,
                   -> desc -> D,
                   -> spplrs *-> supplier < -> name -> SN, -> address -> A > >
rule Sups:
  Psup(SN) :
    class -> supplier < -> name -> SN, -> city -> C >
<=
  Pbr : brochure < -> number -> Num, -> title -> T, -> model -> Y,
                   -> desc -> D,
                   -> spplrs *-> supplier < -> name -> SN, -> address -> A > >,
  C is city(A)
rule Stats:
  Pstats(Pbr) :
    stats < -> title -> T, -> year -> Y, {}-> entry < -> n -> SN, -> a -> A > >
<=
  Pbr : brochure < -> number -> Num, -> title -> T, -> model -> Y,
                   -> desc -> D,
                   -> spplrs *-> supplier < -> name -> SN, -> address -> A > >
end
"""


@pytest.mark.parametrize(
    "targets", [None, ["Psup"]], ids=["materialize-all", "query-Psup"]
)
def test_ablation_targeted_evaluation(benchmark, targets):
    program = parse_program(MULTI_OUTPUT)
    inputs = brochure_trees(200, distinct_suppliers=20)
    result = benchmark(program.run, inputs, target_functors=targets)
    assert result.ids_of("Psup")
    if targets is not None:
        assert not result.ids_of("Pstats")
