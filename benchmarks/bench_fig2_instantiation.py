"""Experiment F2 — Figure 2: model instantiation across levels.

Checks and measures the instantiation tower Golf ⊑ Car Schema ⊑ ODMG ⊑
Yat, plus instantiation checking of ground data of growing size against
each level (the cost of optional typing at increasing specificity).
"""

import pytest

from repro.core.instantiation import model_is_instance, tree_is_instance
from repro.core.models import car_schema_model, odmg_model, yat_model
from repro.wrappers import OdmgImportWrapper
from repro.workloads import car_object_store


def test_fig2_tower_holds():
    yat, odmg, car = yat_model(), odmg_model(), car_schema_model()
    assert odmg.is_instance_of(yat)
    assert car.is_instance_of(odmg)
    assert car.is_instance_of(yat)
    assert not yat.is_instance_of(odmg)
    assert not odmg.is_instance_of(car)


@pytest.mark.parametrize(
    "instance_factory,source_factory",
    [
        (odmg_model, yat_model),
        (car_schema_model, odmg_model),
        (car_schema_model, yat_model),
    ],
    ids=["ODMG<Yat", "CarSchema<ODMG", "CarSchema<Yat"],
)
def test_fig2_model_check(benchmark, instance_factory, source_factory):
    instance, source = instance_factory(), source_factory()
    assert benchmark(model_is_instance, instance, source)


@pytest.mark.parametrize("cars", [10, 100])
@pytest.mark.parametrize(
    "level", ["Yat", "ODMG", "CarSchema"],
)
def test_fig2_ground_data_check(benchmark, cars, level):
    """Checking the (scaled) Golf database against each model level."""
    store = OdmgImportWrapper().to_store(car_object_store(cars, cars // 2 or 1))
    factory = {
        "Yat": yat_model, "ODMG": odmg_model, "CarSchema": car_schema_model
    }[level]
    model = factory()
    pattern = model.patterns()[0]

    def check_all():
        return all(
            tree_is_instance(node, pattern, model=model, store=store)
            for _, node in store
            if str(node.label) == "class" and level != "CarSchema"
            or str(node.children[0].label) == "car"
        )

    assert benchmark(check_all)
